"""Parallel evaluation engine: equivalence with the serial reference path."""

import pytest

from repro import presets
from repro.eval.parallel import EvalJob, ParallelRunner, _execute_job
from repro.eval.runner import run_suite
from repro.frontend.config import CoreConfig
from repro.workloads.micro import build_micro

MAX_INSTRUCTIONS = 2000


@pytest.fixture(scope="module")
def programs():
    return {name: build_micro(name, scale=0.2) for name in ("biased", "dispatch")}


@pytest.fixture(scope="module")
def serial_results(programs):
    return run_suite(
        ["b2", "tourney"], programs, max_instructions=MAX_INSTRUCTIONS
    )


class TestParallelEquivalence:
    def test_jobs4_bit_identical_to_serial(self, programs, serial_results):
        """2 presets x 2 micro workloads: every field of every RunResult
        (including the full CoreStats) must match the serial reference."""
        parallel = run_suite(
            ["b2", "tourney"], programs, max_instructions=MAX_INSTRUCTIONS, jobs=4
        )
        for system, rows in serial_results.items():
            for workload, expected in rows.items():
                got = parallel[system][workload]
                assert got == expected
                assert got.stats == expected.stats

    def test_parallel_with_cache_matches(self, tmp_path, programs, serial_results):
        kwargs = dict(
            max_instructions=MAX_INSTRUCTIONS, jobs=4, cache=tmp_path / "cache"
        )
        cold = run_suite(["b2", "tourney"], programs, **kwargs)
        warm = run_suite(["b2", "tourney"], programs, **kwargs)
        for system, rows in serial_results.items():
            for workload, expected in rows.items():
                assert cold[system][workload] == expected
                assert warm[system][workload] == expected

    def test_unpicklable_factory_falls_back_to_serial(self, programs):
        """A closure factory cannot cross the process boundary; the runner
        must execute it in-process instead of failing."""
        sets = 256
        systems = [
            ("tiny_tage", lambda: presets.tage_l(tage_sets=sets), None),
            "b2",
        ]
        parallel = run_suite(
            systems, programs, max_instructions=MAX_INSTRUCTIONS, jobs=4
        )
        serial = run_suite(systems, programs, max_instructions=MAX_INSTRUCTIONS)
        for system in ("tiny_tage", "b2"):
            for workload in programs:
                assert parallel[system][workload] == serial[system][workload]


class TestRunSuiteOptions:
    def test_max_cycles_forwarded(self, programs):
        bounded = run_suite(
            ["b2"], {"biased": programs["biased"]}, max_cycles=300
        )
        assert bounded["b2"]["biased"].cycles <= 300

    def test_shared_core_config_default(self, programs):
        """A suite-wide CoreConfig reaches every system without one."""
        config = CoreConfig(fetch_memoization=False)
        plain = run_suite(
            ["b2"], programs, max_instructions=MAX_INSTRUCTIONS
        )
        shared = run_suite(
            ["b2"], programs, max_instructions=MAX_INSTRUCTIONS, core_config=config
        )
        # Memoization is result-neutral, so the shared config must produce
        # identical stats while actually being applied.
        for workload in programs:
            assert shared["b2"][workload] == plain["b2"][workload]

    def test_system_config_beats_shared_default(self, programs):
        explicit = CoreConfig(rob_entries=16)
        shared = CoreConfig(rob_entries=128)
        results = run_suite(
            [("b2_small", lambda: presets.b2(), explicit)],
            {"biased": programs["biased"]},
            max_instructions=MAX_INSTRUCTIONS,
            core_config=shared,
        )
        small_rob = results["b2_small"]["biased"]
        baseline = run_suite(
            ["b2"], {"biased": programs["biased"]},
            max_instructions=MAX_INSTRUCTIONS,
        )["b2"]["biased"]
        # A 16-entry ROB measurably slows the core; identical cycles would
        # mean the per-system config was ignored.
        assert small_rob.cycles > baseline.cycles

    def test_progress_fires_per_pair(self, programs):
        seen = []
        run_suite(
            ["b2", "tourney"],
            programs,
            max_instructions=MAX_INSTRUCTIONS,
            progress=lambda s, w: seen.append((s, w)),
        )
        assert sorted(seen) == sorted(
            (s, w) for s in ("b2", "tourney") for w in programs
        )

    def test_live_predictor_rejected(self, programs):
        with pytest.raises(TypeError):
            run_suite([presets.b2()], programs)


class TestRunnerInternals:
    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_execute_job_builds_fresh_state(self, programs):
        job = EvalJob(
            system="b2",
            spec="b2",
            workload="biased",
            program=programs["biased"],
            max_instructions=MAX_INSTRUCTIONS,
        )
        first = _execute_job(job)
        second = _execute_job(job)
        # Power-on-fresh predictor per execution: repeat runs are identical.
        assert first == second

    def test_order_preserved(self, programs):
        batch = [
            EvalJob(
                system=system,
                spec=system,
                workload=workload,
                program=program,
                max_instructions=MAX_INSTRUCTIONS,
            )
            for system in ("b2", "tourney")
            for workload, program in programs.items()
        ]
        results = ParallelRunner(jobs=4).run(batch)
        assert [(r.system, r.workload) for r in results] == [
            (j.system, j.workload) for j in batch
        ]
