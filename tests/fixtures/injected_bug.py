"""A deliberately broken component the differential fuzzer must catch.

:class:`PhantomPhase` predicts every conditional branch from the parity
of its own lookup count — and *lies* about being ``branchless_inert``.
Its state (the lookup counter) advances on every packet, including
packets with no control flow, so the replay backend's branchless-skip
fast path changes how many lookups it sees and its predictions phase-
shift relative to the full commit-order walk.  The ``backends`` oracle
(trace-vs-replay bit identity) catches exactly this class of bug; the
tests assert it does, and that the minimizer shrinks the failing case to
a small bound.

Everything here stays out of the shipped library — the fixture registers
``PHANTOM`` into a private copy of ``standard_library()``.
"""

from __future__ import annotations

from repro.components.library import standard_library
from repro.core.composer import ComposedPredictor, ComposerConfig, compose
from repro.core.interface import PredictorComponent, StorageReport

#: The topology the fixture campaign runs (the honest BIM backs targets
#: and gives the phantom something to override).
INJECTED_TOPOLOGY = "PHANTOM2 > BIM2"


class PhantomPhase(PredictorComponent):
    """Direction prediction keyed to lookup-call parity.

    The lie: ``branchless_inert`` stays at its default True, but every
    ``lookup`` — branchy packet or not — advances ``_lookups``, which
    decides the predicted direction.  Skipping branchless packets
    therefore changes this component's observable behavior.
    """

    def __init__(self, name: str, latency: int = 2):
        super().__init__(name, latency)
        self._lookups = 0

    def lookup(self, req, predict_in):
        self._lookups += 1
        phase = bool(self._lookups & 1)
        out = predict_in[0].copy()
        for slot in out.slots:
            if not slot.is_jump:
                slot.hit = True
                slot.taken = phase
        return out, 0

    def storage(self) -> StorageReport:
        return StorageReport(self.name, flop_bits=32, breakdown={"phase": 32})

    def reset(self) -> None:
        self._lookups = 0


def injected_library():
    """A private standard library with the broken PHANTOM registered."""
    library = standard_library()
    library.register("PHANTOM", PhantomPhase)
    return library


def build_injected_predictor() -> ComposedPredictor:
    """Module-level (hence picklable) factory for the buggy composition."""
    return compose(INJECTED_TOPOLOGY, injected_library(), ComposerConfig())
