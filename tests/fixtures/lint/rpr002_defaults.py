"""Violation fixture: mutable default arguments (RPR002)."""


def accumulates(history=[]):  # RPR002
    history.append(1)
    return history


def keyword_only(*, table={}):  # RPR002
    return table


def factory_call(buckets=list()):  # RPR002
    return buckets


def fine(history=None):
    return history or []


def suppressed(cache={}):  # repro: noqa[RPR002]
    return cache
