"""Violation fixture: in-place mutation of predict_in (RPR004)."""


def mutating_lookup(req, predict_in):
    predict_in[0].slots[0].taken = True  # RPR004: assignment into input
    predict_in[0].slots.append(None)  # RPR004: mutating method call
    return predict_in[0]


def copying_lookup(req, predict_in):
    out = predict_in[0].copy()
    out.slots[0].taken = True  # fine: operates on the copy
    return out


def suppressed_lookup(req, predict_in):
    predict_in[0].slots[0].hit = False  # repro: noqa[RPR004]
    return predict_in[0]
