"""Violation fixture: fire without on_repair (RPR003)."""

from repro.core.interface import PredictorComponent


class SpeculatesWithoutRepair(PredictorComponent):  # RPR003
    def lookup(self, req, predict_in):
        return predict_in[0], 0

    def storage(self):
        raise NotImplementedError

    def fire(self, bundle):
        self.counter = getattr(self, "counter", 0) + 1


class Intermediate(SpeculatesWithoutRepair):  # RPR003 (inherited fire)
    pass


class RepairsProperly(PredictorComponent):
    def lookup(self, req, predict_in):
        return predict_in[0], 0

    def storage(self):
        raise NotImplementedError

    def fire(self, bundle):
        self.counter = getattr(self, "counter", 0) + 1

    def on_repair(self, bundle):
        self.counter -= 1


class InheritsRepair(RepairsProperly):
    def fire(self, bundle):
        self.counter = getattr(self, "counter", 0) + 2
