"""Violation fixture: unseeded RNG and wall-clock reads (RPR001)."""

import random
import time

import numpy as np
from numpy import random as npr


def unseeded_module_rng():
    return random.randint(0, 7)  # RPR001: process-global RNG


def wall_clock():
    return time.perf_counter()  # RPR001: wall-clock read


def numpy_global_generator():
    return np.random.rand(4)  # RPR001: numpy global generator


def numpy_alias_generator():
    return npr.random()  # RPR001: numpy global generator via alias


def seeded_is_fine():
    rng = random.Random(1234)
    gen = np.random.RandomState(1234)
    return rng.random() + gen.rand()


def suppressed_is_fine():
    return time.time()  # repro: noqa[RPR001]
