"""Deliberately broken components: one contract violation per class.

Each class trips exactly one CON rule in the ``repro check --components``
harness (plus TOP003 for :class:`MiscountedMeta`, which lies about its
metadata layout).  The analysis tests register these into a fresh
:class:`~repro.core.parser.ComponentLibrary` and assert the expected rule
fires; they are never part of the shipped library.
"""

import random

from repro.components.base import MetaCodec
from repro.core.interface import PredictorComponent, StorageReport


class _Base(PredictorComponent):
    """Shared honest implementations so each subclass breaks one thing."""

    def lookup(self, req, predict_in):
        return predict_in[0].copy(), 0

    def storage(self):
        return StorageReport(self.name, sram_bits=64, breakdown={"t": 64})


class WideMeta(_Base):
    """CON001: metadata wider than the declared meta_bits."""

    def __init__(self, name, latency):
        super().__init__(name, latency, meta_bits=4)

    def lookup(self, req, predict_in):
        return predict_in[0].copy(), 0xFF


class InputMutator(_Base):
    """CON002: overrides slots directly in the incoming vector."""

    def __init__(self, name, latency):
        super().__init__(name, latency)

    def lookup(self, req, predict_in):
        for slot in predict_in[0].slots:
            slot.hit = True
            slot.taken = True
        return predict_in[0], 0


class JumpClobberer(_Base):
    """CON002: drops incoming jump targets instead of passing them through."""

    def __init__(self, name, latency):
        super().__init__(name, latency)

    def lookup(self, req, predict_in):
        out = predict_in[0].copy()
        for slot in out.slots:
            slot.hit = True
            slot.is_jump = False
            slot.taken = (req.fetch_pc & 1) == 0
            slot.target = None
        return out, 0


class HistorySniffer(_Base):
    """CON003: reads the global history without declaring it, so it can be
    built at latency 1 where the history is physically unavailable."""

    def __init__(self, name, latency):
        super().__init__(name, latency, meta_bits=1)

    def lookup(self, req, predict_in):
        out = predict_in[0].copy()
        parity = bin(req.ghist).count("1") & 1
        for slot in out.slots:
            if slot.is_jump:
                continue
            slot.hit = True
            slot.taken = bool(parity)
        return out, parity


class LeakyReset(_Base):
    """CON004: accumulates state that reset() forgets to clear."""

    # Honest about learning on every packet (CON008 is not the bug here).
    branchless_inert = False

    def __init__(self, name, latency):
        super().__init__(name, latency)
        self._seen = []

    def on_update(self, bundle):
        self._seen.append(bundle.fetch_pc)

    def reset(self):
        pass  # forgets self._seen


class FireWithoutRepair(_Base):
    """CON005: fire mutates state and on_repair does not undo it."""

    # Honest about learning on every packet (CON008 is not the bug here).
    branchless_inert = False

    def __init__(self, name, latency):
        super().__init__(name, latency)
        self._speculative = 0

    def fire(self, bundle):
        self._speculative += 1

    def reset(self):
        self._speculative = 0  # reset is honest; only repair is missing


class WrongStorage(_Base):
    """CON006: breakdown does not sum to the declared totals."""

    def __init__(self, name, latency):
        super().__init__(name, latency)

    def storage(self):
        return StorageReport(
            self.name, sram_bits=128, flop_bits=8, breakdown={"table": 100}
        )


class Flaky(_Base):
    """CON007: consults the process-global RNG during lookup."""

    def __init__(self, name, latency):
        # Declares a history so latency-1 builds are rejected outright and
        # the randomness is attributed to CON007, not CON003.
        super().__init__(name, latency, meta_bits=8, uses_global_history=True)

    def lookup(self, req, predict_in):
        return predict_in[0].copy(), random.getrandbits(8)


class BranchlessLearner(_Base):
    """CON008: learns on every committed packet — including packets with
    no control flow — while leaving ``branchless_inert`` at its default
    True, so the replay fast path would silently diverge."""

    def __init__(self, name, latency):
        super().__init__(name, latency)
        self._fetches = 0

    def on_update(self, bundle):
        self._fetches += 1

    def reset(self):
        self._fetches = 0


class _InvertingKernel:
    """Batch kernel that predicts the opposite of its scalar component."""

    def __init__(self, component):
        self.c = component

    def lookup(self, ctx, state):
        import numpy as np

        out = state.copy()
        sel = ctx.lane_valid & ~out.is_jump
        out.hit = out.hit | sel
        # The scalar lookup predicts taken on every non-jump slot; the
        # kernel predicts not-taken on the same slots.
        out.taken = np.where(sel, False, out.taken)
        return out

    def mutates(self, ctx):
        import numpy as np

        return np.zeros(ctx.P, dtype=bool)

    def commit(self, ctx, accepted):
        pass


class KernelLiar(_Base):
    """CON009: advertises a columnar kernel whose batched lookup inverts
    every direction the scalar lookup predicts, so the batch-kernel replay
    path would silently diverge from the scalar walker."""

    def __init__(self, name, latency):
        super().__init__(name, latency)

    def lookup(self, req, predict_in):
        out = predict_in[0].copy()
        for slot in out.slots:
            if slot.is_jump:
                continue
            slot.hit = True
            slot.taken = True
        return out, 0

    def columnar_kernel(self):
        return _InvertingKernel(self)


class MiscountedMeta(_Base):
    """TOP003: declares fewer meta_bits than its codec actually packs."""

    def __init__(self, name, latency):
        self._codec = MetaCodec([("ctr", 2, 5)])  # 10 bits
        super().__init__(name, latency, meta_bits=6)

    def lookup(self, req, predict_in):
        return predict_in[0].copy(), 0


#: Factories keyed by the rule each one violates.
VIOLATIONS = {
    "CON001": ("WMETA", WideMeta),
    "CON002": ("MUTATOR", InputMutator),
    "CON003": ("SNIFFER", HistorySniffer),
    "CON004": ("LEAKY", LeakyReset),
    "CON005": ("NOREPAIR", FireWithoutRepair),
    "CON006": ("BADSTORE", WrongStorage),
    "CON007": ("FLAKY", Flaky),
    "CON008": ("BRLEARN", BranchlessLearner),
    "CON009": ("KLIAR", KernelLiar),
}
