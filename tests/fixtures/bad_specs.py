"""Deliberately lying component specs: one SPEC rule violation per class.

Each class subclasses the shipped :class:`~repro.components.bimodal.HBIM`
(in its gshare configuration, whose honest spec passes every rule) and
overrides ``spec()`` to lie in exactly one way, so the analysis tests can
assert each ``SPEC001``-``SPEC008`` rule fires — and fires alone — on a
committed fixture.  They are never part of the shipped library.
"""

import dataclasses

from repro.components.bimodal import HBIM
from repro.spec import FieldSpec, IndexFn


class _SpecHBIM(HBIM):
    """A fixed gshare HBIM whose honest spec is clean under the analyzer."""

    def __init__(self, name, latency):
        super().__init__(
            name, latency, n_sets=1024, index="gshare", history_bits=16
        )

    def honest_spec(self):
        return HBIM.spec(self)


class MissingSpec(_SpecHBIM):
    """SPEC001: no spec and no registered waiver."""

    def spec(self):
        return None


class LyingGeometry(_SpecHBIM):
    """SPEC002: the declared counter field is wider than the real table."""

    def spec(self):
        honest = self.honest_spec()
        table = honest.tables[0]
        fat = FieldSpec("ctr", self.counter_bits + 1, self.fetch_width)
        return dataclasses.replace(
            honest,
            tables=(dataclasses.replace(table, fields=(fat,)),),
        )


class WrongIndex(_SpecHBIM):
    """SPEC003: declares a pc index while the implementation uses gshare."""

    def spec(self):
        honest = self.honest_spec()
        table = honest.tables[0]
        lie = IndexFn(
            "pc",
            table.index.index_bits,
            key=table.index.key,
            fetch_width=table.index.fetch_width,
        )
        return dataclasses.replace(
            honest,
            tables=(dataclasses.replace(table, index=lie),),
        )


class WrongHistory(_SpecHBIM):
    """SPEC004: declares one more ghist bit than required_ghist_bits."""

    def spec(self):
        honest = self.honest_spec()
        return dataclasses.replace(honest, ghist_bits=honest.ghist_bits + 1)


class WrongMeta(_SpecHBIM):
    """SPEC005: renames the metadata field the MetaCodec calls ``ctr``."""

    def spec(self):
        honest = self.honest_spec()
        renamed = FieldSpec("counter", self.counter_bits, self.fetch_width)
        return dataclasses.replace(honest, meta_fields=(renamed,))


class KernelDenier(_SpecHBIM):
    """SPEC006: declares kernel='none' while columnar_kernel() exists."""

    def spec(self):
        return dataclasses.replace(self.honest_spec(), kernel="none")


class KernelWithoutImpl(_SpecHBIM):
    """SPEC006: declares a closed-form kernel but implements none."""

    def columnar_kernel(self):
        return None


class UnwaivedClosedForm(_SpecHBIM):
    """SPEC006: closed-form and engine-drivable, no kernel, no waiver."""

    def columnar_kernel(self):
        return None

    def spec(self):
        return dataclasses.replace(self.honest_spec(), kernel="none")


class InertLiar(_SpecHBIM):
    """SPEC007: learn triggers say not inert; the class says inert."""

    def spec(self):
        honest = self.honest_spec()
        return dataclasses.replace(honest, learns_from=("branch", "any"))


class MalformedSpec(_SpecHBIM):
    """SPEC008: a structurally invalid spec (non-positive field width)."""

    def spec(self):
        honest = self.honest_spec()
        table = honest.tables[0]
        broken = FieldSpec("ctr", -2, self.fetch_width)
        return dataclasses.replace(
            honest,
            tables=(dataclasses.replace(table, fields=(broken,)),),
        )


class CrashingSpec(_SpecHBIM):
    """SPEC008: spec() itself raises."""

    def spec(self):
        raise RuntimeError("spec construction exploded")


#: rule code -> the fixture class built to trip exactly that rule.
SPEC_VIOLATIONS = {
    "SPEC001": MissingSpec,
    "SPEC002": LyingGeometry,
    "SPEC003": WrongIndex,
    "SPEC004": WrongHistory,
    "SPEC005": WrongMeta,
    "SPEC006": KernelDenier,
    "SPEC007": InertLiar,
    "SPEC008": MalformedSpec,
}
