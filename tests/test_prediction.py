"""Tests for prediction datatypes (packet spans, next-PC semantics)."""

import pytest

from repro.core.prediction import (
    PredictionVector,
    SlotPrediction,
    StagedPrediction,
    packet_span,
)


class TestPacketSpan:
    def test_aligned_full_width(self):
        assert packet_span(0, 4) == 4
        assert packet_span(8, 4) == 4

    def test_mid_packet_entry(self):
        assert packet_span(9, 4) == 3
        assert packet_span(11, 4) == 1

    def test_width_one(self):
        assert packet_span(5, 1) == 1


class TestSlotPrediction:
    def test_defaults(self):
        slot = SlotPrediction()
        assert not slot.hit and not slot.redirects
        assert slot.target is None

    def test_redirects(self):
        assert SlotPrediction(is_jump=True).redirects
        assert SlotPrediction(is_branch=True, taken=True).redirects
        assert not SlotPrediction(is_branch=True, taken=False).redirects
        assert not SlotPrediction(taken=True).redirects  # not known as CFI

    def test_copy_is_independent(self):
        slot = SlotPrediction(hit=True, is_branch=True, taken=True, target=5)
        clone = slot.copy()
        clone.taken = False
        assert slot.taken
        assert clone == SlotPrediction(hit=True, is_branch=True, taken=False, target=5)

    def test_equality(self):
        a = SlotPrediction(hit=True, taken=True)
        assert a == SlotPrediction(hit=True, taken=True)
        assert a != SlotPrediction(hit=False, taken=True)
        assert a != "not a slot"


class TestPredictionVector:
    def test_fallthrough_next_pc_aligned(self):
        vec = PredictionVector.fallthrough(0, 4)
        assert vec.cfi_index() is None
        assert vec.next_fetch_pc(4) == 4

    def test_fallthrough_mid_packet(self):
        vec = PredictionVector.fallthrough(6, 2)
        assert vec.next_fetch_pc(4) == 8

    def test_taken_with_target_redirects(self):
        vec = PredictionVector.fallthrough(0, 4)
        vec.slots[1].is_branch = True
        vec.slots[1].taken = True
        vec.slots[1].target = 42
        assert vec.cfi_index() == 1
        assert vec.next_fetch_pc(4) == 42

    def test_taken_without_target_falls_through(self):
        vec = PredictionVector.fallthrough(0, 4)
        vec.slots[2].is_jump = True  # e.g. JALR with no BTB hit
        assert vec.cfi_index() == 2
        assert vec.next_fetch_pc(4) == 4

    def test_first_redirecting_slot_wins(self):
        vec = PredictionVector.fallthrough(0, 4)
        vec.slots[0].is_jump = True
        vec.slots[0].target = 10
        vec.slots[3].is_jump = True
        vec.slots[3].target = 20
        assert vec.next_fetch_pc(4) == 10

    def test_taken_mask(self):
        vec = PredictionVector.fallthrough(0, 3)
        vec.slots[0].is_branch = True
        vec.slots[0].taken = True
        vec.slots[1].is_jump = True  # jumps are not in the branch mask
        vec.slots[1].taken = True
        assert vec.taken_mask() == (True, False, False)

    def test_copy_deep(self):
        vec = PredictionVector.fallthrough(0, 2)
        clone = vec.copy()
        clone.slots[0].taken = True
        assert not vec.slots[0].taken


class TestStagedPrediction:
    def test_stage_indexing(self):
        vectors = [PredictionVector.fallthrough(0, 4) for _ in range(3)]
        staged = StagedPrediction(vectors, {})
        assert staged.depth == 3
        assert staged.stage(1) is vectors[0]
        assert staged.final is vectors[2]

    def test_stage_bounds(self):
        staged = StagedPrediction([PredictionVector.fallthrough(0, 4)], {})
        with pytest.raises(IndexError):
            staged.stage(0)
        with pytest.raises(IndexError):
            staged.stage(2)
