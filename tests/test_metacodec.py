"""Tests for the metadata bitfield codec and index schemes."""

import pytest
from hypothesis import given, strategies as st

from repro.components.base import IndexScheme, MetaCodec


class TestMetaCodec:
    def test_scalar_roundtrip(self):
        codec = MetaCodec([("hit", 1), ("way", 2)])
        meta = codec.pack(hit=1, way=3)
        assert codec.unpack(meta) == {"hit": 1, "way": 3}

    def test_vector_roundtrip(self):
        codec = MetaCodec([("ctr", 2, 4)])
        meta = codec.pack(ctr=[0, 1, 2, 3])
        assert codec.unpack(meta)["ctr"] == [0, 1, 2, 3]

    def test_width_accumulates(self):
        codec = MetaCodec([("a", 3), ("b", 2, 4), ("c", 1)])
        assert codec.width == 3 + 8 + 1

    def test_missing_field_defaults_zero(self):
        codec = MetaCodec([("a", 2), ("b", 2)])
        assert codec.unpack(codec.pack(b=3)) == {"a": 0, "b": 3}

    def test_value_too_wide_rejected(self):
        codec = MetaCodec([("a", 2)])
        with pytest.raises(ValueError):
            codec.pack(a=4)

    def test_negative_rejected(self):
        codec = MetaCodec([("a", 2)])
        with pytest.raises(ValueError):
            codec.pack(a=-1)

    def test_unknown_field_rejected(self):
        codec = MetaCodec([("a", 2)])
        with pytest.raises(ValueError, match="unknown"):
            codec.pack(a=1, z=1)

    def test_wrong_lane_count_rejected(self):
        codec = MetaCodec([("v", 2, 4)])
        with pytest.raises(ValueError, match="lanes"):
            codec.pack(v=[1, 2])

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MetaCodec([("a", 1), ("a", 2)])

    def test_fields_independent(self):
        codec = MetaCodec([("lo", 4), ("hi", 4)])
        meta = codec.pack(lo=0xF, hi=0x0)
        assert codec.unpack(meta) == {"lo": 0xF, "hi": 0x0}

    @given(st.lists(st.integers(0, 7), min_size=4, max_size=4), st.integers(0, 1))
    def test_roundtrip_property(self, lanes, flag):
        codec = MetaCodec([("flag", 1), ("lanes", 3, 4)])
        meta = codec.pack(flag=flag, lanes=lanes)
        out = codec.unpack(meta)
        assert out["flag"] == flag
        assert out["lanes"] == lanes
        assert 0 <= meta < (1 << codec.width)


class TestIndexScheme:
    def test_pc_scheme_ignores_history(self):
        scheme = IndexScheme("pc", 8)
        assert scheme.index(5, 0, 0) == scheme.index(5, 123, 456)

    def test_ghist_scheme_uses_history(self):
        scheme = IndexScheme("ghist", 8, history_bits=16)
        assert scheme.index(5, 0b1111, 0) != scheme.index(5, 0b1010, 0)
        assert scheme.uses_global_history and not scheme.uses_local_history

    def test_lhist_scheme(self):
        scheme = IndexScheme("lhist", 8, history_bits=16)
        assert scheme.uses_local_history
        assert scheme.index(5, 0, 3) != scheme.index(5, 0, 12)

    def test_gshare_mixes_both(self):
        scheme = IndexScheme("gshare", 8, history_bits=16)
        assert scheme.index(5, 7, 0) != scheme.index(9, 7, 0)
        assert scheme.index(5, 7, 0) != scheme.index(5, 8, 0)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            IndexScheme("magic", 8)

    def test_history_scheme_requires_length(self):
        with pytest.raises(ValueError):
            IndexScheme("ghist", 8, history_bits=0)

    def test_index_in_range(self):
        scheme = IndexScheme("gshare", 6, history_bits=32)
        for pc in range(100):
            assert 0 <= scheme.index(pc, pc * 7, 0) < 64


class TestGSelect:
    def test_concatenates_pc_and_history(self):
        scheme = IndexScheme("gselect", 8, history_bits=16)
        # Low half = history bits, high half = PC hash.
        a = scheme.index(0, 0b1010, 0)
        assert a & 0b1111 == 0b1010
        assert scheme.index(0, 0b1010, 0) != scheme.index(1, 0b1010, 0)

    def test_composes_in_topology(self):
        from repro.core import compose

        predictor = compose("GSELECT2 > BTB2")
        assert predictor.depth == 2
        assert any(c.uses_global_history for c in predictor.components)
