"""Tests for history providers, the history file, the RAS, and repair."""

import pytest

from repro.components.ras import ReturnAddressStack
from repro.core.history import GlobalHistoryProvider, LocalHistoryProvider
from repro.core.history_file import HistoryFile, HistoryFileError
from repro.core.repair import RepairStateMachine


class TestGlobalHistory:
    def test_speculate_shifts(self):
        g = GlobalHistoryProvider(8)
        g.speculate([True, False, True])
        assert g.read() == 0b101

    def test_truncates_to_length(self):
        g = GlobalHistoryProvider(4)
        g.speculate([True] * 10)
        assert g.read() == 0b1111

    def test_restore(self):
        g = GlobalHistoryProvider(8)
        g.speculate([True, True])
        snap = g.read()
        g.speculate([False, False])
        g.restore(snap)
        assert g.read() == snap

    def test_reset(self):
        g = GlobalHistoryProvider(8)
        g.speculate([True])
        g.reset()
        assert g.read() == 0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            GlobalHistoryProvider(0)

    def test_storage_is_flops(self):
        assert GlobalHistoryProvider(64).storage().flop_bits == 64


class TestLocalHistory:
    def test_per_packet_isolation(self):
        lh = LocalHistoryProvider(16, 8, 4)
        idx_a, _ = lh.read(0)
        idx_b, _ = lh.read(4)
        assert idx_a != idx_b
        lh.speculate(idx_a, [True])
        _, hist_a = lh.read(0)
        _, hist_b = lh.read(4)
        assert hist_a == 1 and hist_b == 0

    def test_same_packet_same_entry(self):
        lh = LocalHistoryProvider(16, 8, 4)
        idx0, _ = lh.read(1)
        idx1, _ = lh.read(3)
        assert idx0 == idx1  # same 4-wide packet

    def test_restore_and_write(self):
        lh = LocalHistoryProvider(16, 8, 4)
        idx, snap = lh.read(0)
        lh.speculate(idx, [True, True])
        lh.restore(idx, snap)
        assert lh.read(0)[1] == snap

    def test_storage(self):
        assert LocalHistoryProvider(256, 32).storage().sram_bits == 256 * 32


class TestHistoryFile:
    def _alloc(self, hf, **over):
        fields = dict(
            fetch_pc=0, width=4, req_ghist=0, chain_ghist=0,
            lhist_index=0, lhist_snapshot=0, metas={},
            br_mask=(False,) * 4, taken_mask=(False,) * 4,
            cfi_idx=None, cfi_taken=False, cfi_target=None,
        )
        fields.update(over)
        return hf.allocate(**fields)

    def test_fifo_ids(self):
        hf = HistoryFile(8)
        ids = [self._alloc(hf).ftq_id for _ in range(3)]
        assert ids == [0, 1, 2]

    def test_overflow_raises(self):
        hf = HistoryFile(2)
        self._alloc(hf)
        self._alloc(hf)
        assert hf.full
        with pytest.raises(HistoryFileError):
            self._alloc(hf)

    def test_squash_after_non_contiguous_ids(self):
        """Ids skip after squashes; find() must still work (regression)."""
        hf = HistoryFile(8)
        a = self._alloc(hf)
        self._alloc(hf)
        self._alloc(hf)
        squashed = hf.squash_after(a.ftq_id)
        assert [e.ftq_id for e in squashed] == [1, 2]
        d = self._alloc(hf)  # id 3: gap at 1,2
        assert hf.get(d.ftq_id) is d
        assert hf.get(a.ftq_id) is a
        assert hf.find(1) is None

    def test_dequeue_order(self):
        hf = HistoryFile(8)
        a = self._alloc(hf)
        b = self._alloc(hf)
        assert hf.dequeue() is a
        assert hf.head() is b

    def test_dequeue_empty_raises(self):
        with pytest.raises(HistoryFileError):
            HistoryFile(2).dequeue()

    def test_get_retired_raises(self):
        hf = HistoryFile(4)
        a = self._alloc(hf)
        hf.dequeue()
        with pytest.raises(HistoryFileError):
            hf.get(a.ftq_id)

    def test_squash_all(self):
        hf = HistoryFile(4)
        self._alloc(hf)
        self._alloc(hf)
        assert len(hf.squash_all()) == 2
        assert len(hf) == 0

    def test_storage_scales_with_meta(self):
        hf = HistoryFile(32)
        small = hf.storage(10, 64, 0).total_bits
        big = hf.storage(100, 64, 32).total_bits
        assert big > small


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(7)
        assert ras.peek() == 7
        assert ras.peek() == 7

    def test_wraps_at_depth(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites the oldest
        assert ras.pop() == 3
        assert ras.pop() == 2

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(4)
        ras.push(5)
        snap = ras.snapshot()
        ras.push(6)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.peek() == 5

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestRepairWalk:
    def test_walk_cycle_accounting(self):
        lh = LocalHistoryProvider(16, 8, 4)
        machine = RepairStateMachine([], lh, walk_width=2)
        hf = HistoryFile(16)
        entries = []
        for i in range(5):
            entries.append(
                hf.allocate(
                    fetch_pc=i * 4, width=4, req_ghist=0, chain_ghist=0,
                    lhist_index=i, lhist_snapshot=0b11, metas={},
                    br_mask=(False,) * 4, taken_mask=(False,) * 4,
                    cfi_idx=None, cfi_taken=False, cfi_target=None,
                )
            )
        squashed = hf.squash_after(entries[0].ftq_id)
        cycles = machine.repair(squashed)
        assert cycles == 2  # ceil(4 / 2)
        assert machine.stats.entries_repaired == 4

    def test_restores_local_history_snapshots(self):
        lh = LocalHistoryProvider(16, 8, 4)
        machine = RepairStateMachine([], lh, walk_width=2)
        hf = HistoryFile(16)
        keep = hf.allocate(
            fetch_pc=0, width=4, req_ghist=0, chain_ghist=0,
            lhist_index=0, lhist_snapshot=0, metas={},
            br_mask=(False,) * 4, taken_mask=(False,) * 4,
            cfi_idx=None, cfi_taken=False, cfi_target=None,
        )
        idx, snap = lh.read(4)
        victim = hf.allocate(
            fetch_pc=4, width=4, req_ghist=0, chain_ghist=0,
            lhist_index=idx, lhist_snapshot=snap, metas={},
            br_mask=(False,) * 4, taken_mask=(False,) * 4,
            cfi_idx=None, cfi_taken=False, cfi_target=None,
        )
        lh.speculate(idx, [True, True, True])
        machine.repair(hf.squash_after(keep.ftq_id))
        assert lh.read(4)[1] == snap

    def test_oldest_snapshot_wins_for_shared_index(self):
        """Two squashed packets touching the same lhist entry: the state
        must return to the *oldest* squashed packet's snapshot."""
        lh = LocalHistoryProvider(16, 8, 4)
        machine = RepairStateMachine([], lh, walk_width=2)
        hf = HistoryFile(16)
        keep = hf.allocate(
            fetch_pc=32, width=4, req_ghist=0, chain_ghist=0,
            lhist_index=9, lhist_snapshot=0, metas={},
            br_mask=(False,) * 4, taken_mask=(False,) * 4,
            cfi_idx=None, cfi_taken=False, cfi_target=None,
        )
        idx, snap0 = lh.read(0)
        hf.allocate(
            fetch_pc=0, width=4, req_ghist=0, chain_ghist=0,
            lhist_index=idx, lhist_snapshot=snap0, metas={},
            br_mask=(False,) * 4, taken_mask=(False,) * 4,
            cfi_idx=None, cfi_taken=False, cfi_target=None,
        )
        lh.speculate(idx, [True])
        _, snap1 = lh.read(0)
        hf.allocate(
            fetch_pc=0, width=4, req_ghist=0, chain_ghist=0,
            lhist_index=idx, lhist_snapshot=snap1, metas={},
            br_mask=(False,) * 4, taken_mask=(False,) * 4,
            cfi_idx=None, cfi_taken=False, cfi_target=None,
        )
        lh.speculate(idx, [True])
        machine.repair(hf.squash_after(keep.ftq_id))
        assert lh.read(0)[1] == snap0

    def test_empty_walk_is_free(self):
        machine = RepairStateMachine([], LocalHistoryProvider(4, 4), 2)
        assert machine.repair([]) == 0
        assert machine.stats.walks == 0

    def test_invalid_walk_width(self):
        with pytest.raises(ValueError):
            RepairStateMachine([], LocalHistoryProvider(4, 4), 0)
