"""Tests for :mod:`repro.derive`: spec-derived tables, kernels, and RTL.

Covers the derived-execution layer end to end: the
:class:`~repro.derive.tables.DerivedTable` runtime (allocation, row
selection, closed-form updates, packing), generated-kernel selection,
the frozen-reference twin equivalence gate (SPEC009 and the fuzz
``derive`` oracle share this machinery), the golden Verilog snapshots,
the LEGAL_SIZINGS drift guard, and the derivation-coverage gate.
"""

import inspect
from pathlib import Path

import numpy as np
import pytest

from repro import presets
from repro._util import hash_pc, mask
from repro.analysis.contracts import _drive
from repro.analysis.spec_check import check_component_spec
from repro.components.bimodal import HBIM
from repro.components.library import standard_library
from repro.derive import (
    DERIVED_BASES,
    DerivedTable,
    assert_derived_coverage,
    derivation_problems,
    derived_kernel,
    derived_storage,
    kernel_is_derived,
    twin_dims,
    twin_pair,
)
from repro.derive.kernels import CandidateCounterKernel, LaneCounterKernel
from repro.rtl import generate_verilog_skeleton
from repro.spec import (
    LEGAL_SIZINGS,
    ComponentSpec,
    FieldSpec,
    IndexFn,
    TableSpec,
)

GOLDEN_RTL_DIR = Path("goldens") / "rtl"


def build(base, latency=2, **sizing):
    library = standard_library(**sizing)
    return library.factory(base)(base.lower(), latency)


def counter_table(
    entries=16, bits=2, count=4, ways=1, update="saturating-counter"
):
    return TableSpec(
        "t",
        entries=entries,
        fields=(FieldSpec("ctr", bits, count),),
        ways=ways,
        update=update,
        index=IndexFn("gshare", 4, history_bits=8, fetch_width=4),
    )


# ----------------------------------------------------------------------
# The DerivedTable runtime
# ----------------------------------------------------------------------
class TestDerivedTable:
    def test_field_dtypes_follow_declared_width(self):
        spec = TableSpec(
            "t",
            entries=8,
            fields=(
                FieldSpec("valid", 1),
                FieldSpec("ctr", 3),
                FieldSpec("target", 32),
            ),
            update="allocate-on-miss",
        )
        table = DerivedTable(spec)
        assert table.data("valid").dtype == np.bool_
        assert table.data("ctr").dtype == np.uint8
        assert table.data("target").dtype == np.int64

    def test_shapes_ways_and_lanes(self):
        laned = DerivedTable(counter_table(entries=16, count=4))
        assert laned.data().shape == (16, 4)
        multiway = DerivedTable(counter_table(entries=16, count=1, ways=2))
        assert multiway.data().shape == (2, 16)
        assert multiway.flat().shape == (32,)
        with pytest.raises(ValueError):
            multiway.lanes()

    def test_initial_value_and_reset_preserve_views(self):
        table = DerivedTable(counter_table(bits=2), init={"ctr": 1})
        view = table.lanes()
        assert (view == 1).all()
        table.train(3, True, lane=2)
        assert view[3, 2] == 2
        table.reset()
        # reset refills in place: pre-existing views stay valid.
        assert (view == 1).all()

    def test_row_evaluates_declared_index_fn(self):
        spec = counter_table()
        table = DerivedTable(spec)
        for pc, ghist in [(0x40, 0), (0x1234, 0xBEEF), (7, 0b1011)]:
            assert table.row(pc, ghist) == spec.index.compute(pc, ghist)

    def test_row_refuses_custom_scheme(self):
        spec = TableSpec(
            "t",
            entries=8,
            fields=(FieldSpec("ctr", 2),),
            index=IndexFn("custom", 3),
        )
        with pytest.raises(ValueError, match="no closed-form row"):
            DerivedTable(spec).row(0x40)

    def test_train_applies_saturating_rule(self):
        table = DerivedTable(counter_table(bits=2), init={"ctr": 1})
        assert table.train(5, True, lane=0) == 2
        assert table.train(5, True, lane=0) == 3
        assert table.train(5, True, lane=0) == 3  # saturates at 2^bits - 1
        assert table.train(5, False, lane=0) == 2
        # The metadata-carried counter overrides the cell read (§III-D).
        assert table.train(5, True, lane=0, counter=0) == 1
        assert table.lanes()[5, 0] == 1

    def test_train_refuses_non_counter_table(self):
        table = DerivedTable(counter_table(update="allocate-on-miss"))
        with pytest.raises(ValueError, match="not saturating-counter"):
            table.train(0, True, lane=0)

    def test_roll_applies_shift_register_rule(self):
        spec = TableSpec(
            "hist",
            entries=4,
            fields=(FieldSpec("h", 4),),
            update="shift-register",
        )
        table = DerivedTable(spec)
        assert table.roll(2, True) == 0b0001
        assert table.roll(2, False) == 0b0010
        assert table.roll(2, True) == 0b0101
        # ``current`` overrides the cell read (exact-event repair path).
        assert table.roll(2, True, current=0b1111) == 0b1111
        assert table.data()[2] == 0b1111

    def test_pack_unpack_roundtrip_lsb_first(self):
        spec = TableSpec(
            "t",
            entries=4,
            fields=(FieldSpec("valid", 1), FieldSpec("ctr", 2, 2)),
            update="allocate-on-miss",
        )
        table = DerivedTable(spec)
        table.data("valid")[1] = True
        table.data("ctr")[1] = (3, 2)
        packed = table.pack_entry(1)
        assert packed == 1 | (3 << 1) | (2 << 3)
        assert table.unpack_entry(packed) == {"valid": 1, "ctr": [3, 2]}
        assert table.entry_bits == 5

    def test_derived_storage_defaults_and_zero_keys(self):
        spec = ComponentSpec("T", tables=(counter_table(),))
        report = derived_storage("t2", spec)
        assert report.sram_bits == spec.tables[0].total_bits
        assert report.access_bits == spec.tables[0].entry_bits
        padded = derived_storage(
            "t2", spec, access_bits=10, zero_keys=("l1_histories",)
        )
        assert padded.access_bits == 10
        assert padded.breakdown["l1_histories"] == 0


# ----------------------------------------------------------------------
# Generated-kernel selection
# ----------------------------------------------------------------------
class TestDerivedKernelSelection:
    @pytest.mark.parametrize("base", ["BIM", "GBIM", "GSHARE", "GSELECT"])
    def test_packet_keyed_counters_get_lane_kernel(self, base):
        kernel = derived_kernel(build(base))
        assert isinstance(kernel, LaneCounterKernel)
        assert kernel.tags is None

    def test_gtag_gets_tag_gated_lane_kernel(self):
        kernel = derived_kernel(build("GTAG"))
        assert isinstance(kernel, LaneCounterKernel)
        assert kernel.tags is not None

    @pytest.mark.parametrize("base", ["GAG", "GAP"])
    def test_branch_keyed_counters_get_candidate_kernel(self, base):
        assert isinstance(derived_kernel(build(base)), CandidateCounterKernel)

    @pytest.mark.parametrize("base", ["LBIM", "PSHARE", "PAG", "PAP"])
    def test_local_and_path_history_schemes_stay_scalar(self, base):
        component = build(base)
        assert component.spec().kernel == "none"
        assert derived_kernel(component) is None
        assert kernel_is_derived(component) is None


# ----------------------------------------------------------------------
# Frozen-reference twins (the SPEC009 / fuzz-oracle machinery)
# ----------------------------------------------------------------------
class TestTwinEquivalence:
    @pytest.mark.parametrize("base", ["GSHARE", "GAP", "GTAG"])
    def test_derived_matches_reference_log(self, base):
        component = build(base)
        derived, reference = twin_pair(component)
        dims = twin_dims(derived)
        assert _drive(derived, 7, 64, dims=dims) == _drive(
            reference, 7, 64, dims=dims
        )

    def test_twin_dims_clamps_to_narrow_fetch_width(self):
        component = build("BIM", fetch_width=1, bim_sets=1024)
        assert component.fetch_width == 1
        assert twin_dims(component).fetch_width == 1

    def test_twin_pair_skips_subclasses(self):
        class Tweaked(HBIM):
            pass

        assert twin_pair(Tweaked("tweaked", 2)) is None

    def test_spec009_fires_on_behavioral_divergence(self, monkeypatch):
        monkeypatch.setattr(
            "repro.derive.reference.ReferenceHBIM.on_update",
            lambda self, bundle: None,
        )
        # Seed chosen so a trained counter crosses its taken threshold
        # inside the 96-step differential drive.
        diags = check_component_spec(build("GSHARE"), seed=2025)
        assert "SPEC009" in [d.code for d in diags]

    def test_spec009_clean_on_unmodified_component(self):
        assert check_component_spec(build("GSHARE")) == []


# ----------------------------------------------------------------------
# IndexFn closed-form edge cases
# ----------------------------------------------------------------------
class TestIndexFnEdgeCases:
    def test_ghist_raw_masks_history_then_index(self):
        # history wider than the index: only index_bits survive.
        fn = IndexFn("ghist_raw", 4, history_bits=10)
        assert fn.compute(0, ghist=0b1010110101) == 0b0101
        # history narrower than the index: the history mask dominates.
        fn = IndexFn("ghist_raw", 6, history_bits=3)
        assert fn.compute(0, ghist=0b101101) == 0b101
        # the PC never enters the raw-history form.
        assert fn.compute(0xDEAD, ghist=0b101101) == 0b101

    def test_packet_key_divides_pc_by_fetch_width(self):
        # pc=36: hash_pc(36, 4) = (36 ^ 2 ^ 0) & 15 = 6
        assert IndexFn("pc", 4, key="branch_pc").compute(36) == 6
        # packet key at width 4 hashes the packet number 36 // 4 = 9.
        assert IndexFn("pc", 4, key="packet", fetch_width=4).compute(36) == 9
        # width 1: packet number == pc, so the two keys coincide.
        assert IndexFn("pc", 4, key="packet", fetch_width=1).compute(36) == 6

    def test_packet_key_maps_whole_packet_to_one_row(self):
        packet = IndexFn("pc", 4, key="packet", fetch_width=4)
        assert {packet.compute(pc) for pc in range(36, 40)} == {9}
        branch = IndexFn("pc", 4, key="branch_pc", fetch_width=4)
        assert branch.compute(36) != branch.compute(37)

    def test_gselect_partitions_index_bits(self):
        # odd width: history gets the floor half, the PC the rest.
        fn = IndexFn("gselect", 5, history_bits=8, fetch_width=1)
        # pc=5: hash_pc(5, 3) = 5; ghist & 3 = 2 → (5 << 2) | 2
        assert fn.compute(5, ghist=0b1110) == (5 << 2) | 2
        # even width: hash_pc(5, 2) = (5 ^ 1) & 3 = 0
        fn = IndexFn("gselect", 4, history_bits=8, fetch_width=1)
        assert fn.compute(5, ghist=0b1110) == 2
        # only the low hist_part history bits participate.
        assert fn.compute(5, ghist=0b1110) == fn.compute(5, ghist=0b10)

    def test_gselect_matches_partition_formula(self):
        fn = IndexFn("gselect", 9, history_bits=16, fetch_width=4)
        hist_part = 9 // 2
        for pc, ghist in [(0x400, 0xABCD), (0x73, 0x1F), (0xFFF, 0)]:
            want = (hash_pc(pc // 4, 9 - hist_part) << hist_part) | (
                ghist & mask(hist_part)
            )
            assert fn.compute(pc, ghist=ghist) == want


# ----------------------------------------------------------------------
# Golden Verilog snapshots
# ----------------------------------------------------------------------
class TestGoldenVerilog:
    @pytest.mark.parametrize("preset", ["tage_l", "b2", "tourney"])
    def test_emitted_verilog_matches_golden(self, preset):
        got = generate_verilog_skeleton(presets.build(preset))
        path = GOLDEN_RTL_DIR / f"{preset}.v"
        assert got == path.read_text(), (
            f"generated Verilog for preset {preset!r} drifted from "
            f"{path}; if intentional, regenerate with: PYTHONPATH=src "
            f'python -c "from repro import presets; from repro.rtl import '
            f"generate_verilog_skeleton as g; import pathlib; "
            f"pathlib.Path('{path}').write_text(g(presets.build("
            f"'{preset}')))\" and commit the diff"
        )


# ----------------------------------------------------------------------
# LEGAL_SIZINGS drift guard
# ----------------------------------------------------------------------
class TestLegalSizingsDrift:
    def test_every_legal_sizing_is_a_library_kwarg(self):
        params = set(inspect.signature(standard_library).parameters)
        missing = set(LEGAL_SIZINGS) - params
        assert not missing, (
            f"LEGAL_SIZINGS keys {sorted(missing)} are not "
            f"standard_library kwargs"
        )

    @pytest.mark.parametrize("key", sorted(LEGAL_SIZINGS))
    def test_boundary_sizings_build_spec_valid_components(self, key):
        for value in (min(LEGAL_SIZINGS[key]), max(LEGAL_SIZINGS[key])):
            library = standard_library(**{key: value})
            for base in library.known():
                component = library.factory(base)(base.lower(), 2)
                spec = component.spec()
                assert spec is not None
                assert spec.validate() == [], (
                    f"{base} with {key}={value} declares an invalid spec"
                )


# ----------------------------------------------------------------------
# The derivation-coverage gate
# ----------------------------------------------------------------------
class TestDerivationCoverage:
    def test_standard_library_is_fully_covered(self):
        assert derivation_problems() == {}
        assert_derived_coverage()

    def test_gate_flags_regressed_base(self):
        from tests.fixtures import bad_specs

        library = standard_library().with_params(
            "BIM", lambda name, latency: bad_specs.MissingSpec(name, latency)
        )
        problems = derivation_problems(library)
        assert "BIM" in problems

    @pytest.mark.parametrize("base", sorted(DERIVED_BASES))
    def test_migrated_bases_hold_derived_tables(self, base):
        component = build(base)
        tables = component.derived_tables
        assert tables and all(
            isinstance(t, DerivedTable) for t in tables.values()
        )
        declared = {t.name for t in component.spec().tables}
        assert declared <= set(tables)
