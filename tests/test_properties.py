"""Property-based tests over the full stack.

The heavyweight invariant: for *any* program our generator can produce, the
speculative core must commit exactly the architectural instruction stream —
speculation may cost cycles, never correctness.
"""

from hypothesis import given, settings, strategies as st

from repro import presets
from repro.components.library import standard_library
from repro.core import ComposerConfig, PreDecodedSlot, compose
from repro.frontend import Core, CoreConfig
from repro.isa import ProgramBuilder, run_program

# ----------------------------------------------------------------------
# Random-program generator: straight-line blocks + forward/backward
# branches with bounded loop counts, always ending in HALT.
# ----------------------------------------------------------------------


@st.composite
def small_programs(draw):
    """Programs made of counted loops and data-dependent hammocks."""
    n_loops = draw(st.integers(1, 3))
    b = ProgramBuilder("hyp")
    b.li(1, draw(st.integers(1, 7)))  # data seed
    for loop_idx in range(n_loops):
        trip = draw(st.integers(1, 12))
        counter = 2 + loop_idx  # r2..r4
        b.li(counter, 0)
        b.li(10, trip)
        b.label(f"loop{loop_idx}")
        n_body = draw(st.integers(0, 3))
        for instr_idx in range(n_body):
            kind = draw(st.integers(0, 2))
            if kind == 0:
                b.addi(5, 5, 1)
            elif kind == 1:
                b.xori(1, 1, draw(st.integers(0, 15)))
            else:
                # data-dependent short forward branch
                b.andi(6, 1, 1 << draw(st.integers(0, 3)))
                b.beq(6, 0, f"skip{loop_idx}_{instr_idx}")
                b.addi(7, 7, 1)
                b.label(f"skip{loop_idx}_{instr_idx}")
        b.addi(counter, counter, 1)
        b.blt(counter, 10, f"loop{loop_idx}")
    b.halt()
    return b.build()


class TestCoreCorrectnessProperty:
    @settings(max_examples=25, deadline=None)
    @given(small_programs(), st.sampled_from(["tage_l", "b2", "tourney"]))
    def test_commits_exactly_the_oracle_stream(self, program, preset):
        oracle_len = len(run_program(program))
        stats = Core(program, presets.build(preset), CoreConfig()).run(
            max_cycles=100_000
        )
        assert stats.committed_instructions == oracle_len

    @settings(max_examples=10, deadline=None)
    @given(small_programs())
    def test_sfb_mode_preserves_architectural_count(self, program):
        oracle_len = len(run_program(program))
        stats = Core(
            program, presets.build("tage_l"), CoreConfig(sfb_enabled=True)
        ).run(max_cycles=100_000)
        assert stats.committed_instructions == oracle_len

    @settings(max_examples=10, deadline=None)
    @given(small_programs())
    def test_mispredicts_never_exceed_branches(self, program):
        stats = Core(program, presets.build("b2"), CoreConfig()).run(
            max_cycles=100_000
        )
        assert stats.branch_mispredicts <= stats.committed_branches


class TestComposerProtocolProperty:
    """Drive a composed predictor with random packet/resolve sequences; the
    history file must never leak entries and histories must stay in range."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 63),   # fetch pc
                st.booleans(),        # packet has a branch at slot 0
                st.booleans(),        # resolved direction
                st.booleans(),        # mispredict?
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_predict_resolve_commit_never_leaks(self, events):
        lib = standard_library(global_history_bits=16)
        pred = compose("GSHARE2", lib, ComposerConfig(global_history_bits=16))
        for fetch_pc, has_branch, taken, mispredict in events:
            fetch_pc -= fetch_pc % 4
            slots = [
                PreDecodedSlot(is_cond_branch=has_branch, direct_target=0)
            ] + [PreDecodedSlot()] * 3
            result = pred.predict(fetch_pc, slots)
            if has_branch and mispredict:
                predicted = result.final.slots[0].taken
                pred.resolve_mispredict(
                    result.ftq_id, 0, not predicted,
                    0 if not predicted else None,
                )
            pred.commit_packet(result.ftq_id)
            assert len(pred.history_file) == 0
            assert 0 <= pred._global.read() < (1 << 16)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 2))
    def test_squash_restores_history_exactly(self, n_younger, keep_extra):
        lib = standard_library(global_history_bits=32)
        pred = compose("GSHARE2", lib, ComposerConfig(global_history_bits=32))
        br = [PreDecodedSlot(is_cond_branch=True, direct_target=0)] + [PreDecodedSlot()] * 3
        anchor = pred.predict(0, br)
        checkpoint = pred._global.read()
        for i in range(n_younger):
            pred.predict((i + 1) * 4, br)
        pred.squash_after(anchor.ftq_id)
        assert pred._global.read() == checkpoint
