"""Tests for the topology-notation parser."""

import pytest

from repro.components.library import standard_library
from repro.core.parser import (
    ComponentLibrary,
    TopologyParseError,
    parse_topology,
)
from repro.core.topology import Arbitrate, Override


@pytest.fixture()
def library():
    return standard_library()


class TestPaperTopologies:
    """Every topology string that appears in the paper must parse."""

    def test_tage_l(self, library):
        node = parse_topology("LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", library)
        assert isinstance(node, Override)
        names = [c.name for c in node.components()]
        assert names == ["ubtb", "bim", "btb", "tage", "loop"]

    def test_b2(self, library):
        node = parse_topology("GTAG3 > BTB2 > BIM2", library)
        assert [c.name for c in node.components()] == ["bim", "btb", "gtag"]

    def test_tournament(self, library):
        node = parse_topology("TOURNEY3 > [GBIM2 > BTB2, LBIM2]", library)
        assert isinstance(node, Arbitrate)
        assert node.selector.name == "tourney"
        assert len(node.children) == 2

    def test_loop_over_tournament(self, library):
        node = parse_topology("LOOP3 > TOURNEY3 > [GBIM2, LBIM2]", library)
        assert isinstance(node, Override)
        assert isinstance(node.lo, Arbitrate)

    def test_loop_inside_arbitration_child(self, library):
        node = parse_topology("TOURNEY3 > [(LOOP2 > GBIM2), LBIM2]", library)
        assert isinstance(node.children[0], Override)

    def test_section4_example_pipelines(self, library):
        for spec in (
            "LOOP2 > GSHARE2 > UBTB1",
            "UBTB1 > GSHARE2 > LOOP2",
            "TOURNEY3 > [GBIM2, (LOOP2 > LBIM2)]",
        ):
            parse_topology(spec, library)


class TestLatencySuffix:
    def test_latency_extracted(self, library):
        node = parse_topology("TAGE4 > BIM2", library)
        comps = {c.name: c for c in node.components()}
        assert comps["tage"].latency == 4
        assert comps["bim"].latency == 2

    def test_missing_latency_rejected(self, library):
        with pytest.raises(TopologyParseError):
            parse_topology("TAGE > BIM2", library)

    def test_duplicate_base_names_get_unique_instances(self, library):
        node = parse_topology("BIM3 > BIM2", library)
        names = [c.name for c in node.components()]
        assert len(set(names)) == 2


class TestErrors:
    def test_unknown_component(self, library):
        with pytest.raises(TopologyParseError, match="unknown component"):
            parse_topology("WIZARD3 > BIM2", library)

    def test_empty(self, library):
        with pytest.raises(TopologyParseError):
            parse_topology("", library)

    def test_trailing_garbage(self, library):
        with pytest.raises(TopologyParseError):
            parse_topology("BIM2 BIM2", library)

    def test_unclosed_bracket(self, library):
        with pytest.raises(TopologyParseError):
            parse_topology("TOURNEY3 > [GBIM2, LBIM2", library)

    def test_single_child_arbitration_rejected(self, library):
        with pytest.raises(Exception):
            parse_topology("TOURNEY3 > [GBIM2]", library)

    def test_stray_symbol(self, library):
        with pytest.raises(TopologyParseError):
            parse_topology("BIM2 > @", library)


class TestLibrary:
    def test_duplicate_registration_rejected(self):
        lib = ComponentLibrary()
        lib.register("X", lambda n, l: None)
        with pytest.raises(ValueError):
            lib.register("x", lambda n, l: None)

    def test_with_params_overrides(self, library):
        from repro.components.bimodal import HBIM

        custom = library.with_params(
            "BIM", lambda name, lat: HBIM(name, lat, n_sets=64)
        )
        node = parse_topology("BIM2", custom)
        comp = next(node.components())
        assert comp.n_sets == 64
        # Original library unchanged.
        node2 = parse_topology("BIM2", library)
        assert next(node2.components()).n_sets != 64

    def test_known_lists_registered(self, library):
        known = library.known()
        for base in ("TAGE", "BIM", "BTB", "UBTB", "LOOP", "TOURNEY", "GTAG"):
            assert base in known

    def test_factory_latency_mismatch_detected(self):
        from repro.components.bimodal import HBIM

        lib = ComponentLibrary()
        lib.register("FIXED", lambda name, lat: HBIM(name, 2))
        with pytest.raises(Exception):
            parse_topology("FIXED3", lib)


class TestDescribe:
    def test_roundtrip(self, library):
        for spec in (
            "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
            "GTAG3 > BTB2 > BIM2",
            "TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
        ):
            node = parse_topology(spec, library)
            reparsed = parse_topology(node.describe(), standard_library())
            assert reparsed.describe() == node.describe()


class TestInteriorDigitNames:
    """Base names may contain interior digits; only the trailing run is
    the latency (``L2BIM2`` is component ``L2BIM`` at latency 2)."""

    @pytest.fixture()
    def digit_library(self):
        from repro.components.bimodal import HBIM

        lib = ComponentLibrary()
        lib.register("L2BIM", lambda name, lat: HBIM(name, lat, n_sets=64))
        lib.register("TAGE64K", lambda name, lat: HBIM(name, lat, n_sets=128))
        lib.register("BIM", lambda name, lat: HBIM(name, lat, n_sets=32))
        return lib

    def test_interior_digit_base(self, digit_library):
        node = parse_topology("L2BIM2", digit_library)
        comp = next(node.components())
        assert comp.base_name == "L2BIM"
        assert comp.latency == 2

    def test_interior_digit_run(self, digit_library):
        node = parse_topology("TAGE64K3", digit_library)
        comp = next(node.components())
        assert comp.base_name == "TAGE64K"
        assert comp.latency == 3

    def test_chain_of_digit_names(self, digit_library):
        node = parse_topology("TAGE64K3 > L2BIM2 > BIM1", digit_library)
        assert [c.latency for c in node.components()] == [1, 2, 3]

    def test_multi_digit_latency_still_wins(self, digit_library):
        # The latency is the entire trailing digit run.
        comp = next(parse_topology("BIM12", digit_library).components())
        assert comp.base_name == "BIM"
        assert comp.latency == 12

    def test_describe_preserves_interior_digits(self, digit_library):
        node = parse_topology("TAGE64K3 > L2BIM2", digit_library)
        assert node.describe() == "TAGE64K3 > L2BIM2"
        reparsed = parse_topology(node.describe(), digit_library)
        assert reparsed.describe() == node.describe()


class TestErrorPositions:
    """Every parse error carries the offending column and a caret snippet."""

    def test_unknown_component_position(self, library):
        spec = "BIM2 > WIZARD3"
        with pytest.raises(TopologyParseError) as exc_info:
            parse_topology(spec, library)
        err = exc_info.value
        assert err.spec == spec
        assert err.pos == spec.index("WIZARD3")
        assert err.column == err.pos + 1
        rendered = str(err)
        assert spec in rendered
        assert "^" in rendered
        assert f"column {err.column}" in rendered

    def test_caret_under_offending_token(self, library):
        spec = "BIM2 > WIZARD3"
        with pytest.raises(TopologyParseError) as exc_info:
            parse_topology(spec, library)
        lines = str(exc_info.value).splitlines()
        assert lines[-2].endswith(spec)
        caret_col = lines[-1].index("^") - (len(lines[-2]) - len(spec))
        assert caret_col == spec.index("WIZARD3")

    def test_stray_symbol_position(self, library):
        spec = "BIM2 > @"
        with pytest.raises(TopologyParseError) as exc_info:
            parse_topology(spec, library)
        assert exc_info.value.pos == spec.index("@")

    def test_trailing_input_position(self, library):
        spec = "BIM2 BIM3"
        with pytest.raises(TopologyParseError) as exc_info:
            parse_topology(spec, library)
        assert exc_info.value.pos == spec.index("BIM3")

    def test_unexpected_end_points_past_spec(self, library):
        spec = "TAGE3 >"
        with pytest.raises(TopologyParseError) as exc_info:
            parse_topology(spec, library)
        assert exc_info.value.pos == len(spec)

    def test_missing_latency_position(self, library):
        spec = "TAGE3 > BIM"
        with pytest.raises(TopologyParseError) as exc_info:
            parse_topology(spec, library)
        assert exc_info.value.pos == spec.index("BIM", 5)

    def test_empty_spec_has_position(self, library):
        with pytest.raises(TopologyParseError) as exc_info:
            parse_topology("   ", library)
        assert exc_info.value.pos is not None
