"""Tests for the workload generators and benchmark programs."""

import pytest

from repro.isa import Interpreter, Opcode
from repro.workloads import (
    SPECINT_NAMES,
    build_coremark,
    build_dhrystone,
    build_specint,
)
from repro.workloads.generators import (
    DataAllocator,
    WorkloadBuilder,
    emit_correlated,
    emit_data_branches,
    emit_dense_branches,
    emit_hammock,
    emit_lcg_branches,
    emit_linked_list,
    emit_nested_loops,
    emit_recursive,
    emit_stream,
    emit_string_ops,
    emit_switch,
    estimate_dynamic_length,
)

ALL_KERNELS = [
    emit_stream,
    emit_data_branches,
    emit_lcg_branches,
    emit_correlated,
    emit_nested_loops,
    emit_linked_list,
    emit_switch,
    emit_recursive,
    emit_dense_branches,
    emit_hammock,
    emit_string_ops,
]


def run_kernel(emit_fn, outer=3, **params):
    w = WorkloadBuilder("t", seed=3)
    w.add(emit_fn, **params)
    program = w.build(outer)
    interp = Interpreter(program)
    trace = list(interp.run(500_000))
    assert trace[-1].instr.op is Opcode.HALT, "kernel must run to completion"
    return program, trace, interp


class TestKernels:
    @pytest.mark.parametrize("emit_fn", ALL_KERNELS)
    def test_kernel_halts(self, emit_fn):
        run_kernel(emit_fn)

    def test_stream_sums_array(self):
        program, trace, interp = run_kernel(emit_stream, outer=1, n=16)
        data_sum = sum(
            v for addr, v in program.data.items() if addr < 100_000 + 16
        )
        stored = [v for addr, v in interp.memory.items() if addr == 100_000 + 16]
        assert stored == [data_sum]

    def test_data_branches_bias(self):
        _, trace, _ = run_kernel(emit_data_branches, outer=1, n=200, bias=0.8)
        branches = [r for r in trace if r.instr.op is Opcode.BEQ]
        # beq tests a[i] == 0: with bias 0.8, ~20% of elements are zero.
        taken = sum(r.taken for r in branches)
        assert taken < len(branches) * 0.4

    def test_lcg_state_persists_across_calls(self):
        _, trace, interp = run_kernel(emit_lcg_branches, outer=2, n=8)
        state_addr = 100_000
        assert interp.memory[state_addr] != 0

    def test_lcg_outcomes_differ_between_iterations(self):
        _, trace, _ = run_kernel(emit_lcg_branches, outer=2, n=32)
        branch_pc = None
        outcomes = []
        for r in trace:
            if r.instr.op is Opcode.BLT and r.instr.rs2 == 7:
                branch_pc = branch_pc or r.pc
                if r.pc == branch_pc:
                    outcomes.append(r.taken)
        half = len(outcomes) // 2
        assert outcomes[:half] != outcomes[half:]

    def test_correlated_pattern_repeats(self):
        program, trace, _ = run_kernel(emit_correlated, outer=1, n=32, period=4)
        branches = [r.taken for r in trace if r.instr.op is Opcode.BNE]
        assert branches[:4] == branches[4:8] == branches[8:12]

    def test_nested_loop_iteration_count(self):
        _, trace, interp = run_kernel(emit_nested_loops, outer=1, trips=(2, 3, 4))
        assert interp.regs[4] == 2 * 3 * 4

    def test_linked_list_visits_all_nodes(self):
        _, trace, _ = run_kernel(emit_linked_list, outer=1, n_nodes=12, spread=2)
        loads = [r for r in trace if r.instr.op is Opcode.LD]
        # two loads per node (value + next)
        assert len(loads) == 24

    def test_switch_dispatches_indirect(self):
        _, trace, _ = run_kernel(emit_switch, outer=1, n=10, n_cases=4)
        indirect = [r for r in trace if r.instr.op is Opcode.JALR and r.instr.rs1 != 15]
        assert len(indirect) == 10

    def test_recursion_depth(self):
        _, trace, _ = run_kernel(emit_recursive, outer=1, depth=5)
        calls = [r for r in trace if r.instr.is_call]
        assert len(calls) >= 6  # entry + 5 recursive
        rets = [r for r in trace if r.instr.is_ret]
        assert len(rets) == len(calls)  # every call returns

    def test_hammock_branches_are_sfb_shaped(self):
        program, _, _ = run_kernel(emit_hammock, outer=1, n=8)
        sfbs = [
            pc
            for pc, instr in enumerate(program.instructions)
            if instr.forward_distance(pc) is not None
            and instr.forward_distance(pc) <= 3
        ]
        assert sfbs


class TestWorkloadBuilder:
    def test_requires_kernels(self):
        with pytest.raises(ValueError):
            WorkloadBuilder("empty").build(1)

    def test_outer_iterations_scale_length(self):
        def build(outer):
            w = WorkloadBuilder("t", seed=1)
            w.add(emit_stream, n=16)
            return w.build(outer)

        short = estimate_dynamic_length(build(2))
        long = estimate_dynamic_length(build(6))
        assert long > 2.5 * short

    def test_allocator_no_overlap(self):
        alloc = DataAllocator()
        a = alloc.alloc(10)
        b = alloc.alloc(10)
        assert b >= a + 10


class TestBenchmarkSuite:
    @pytest.mark.parametrize("name", SPECINT_NAMES)
    def test_specint_builds_and_halts(self, name):
        program = build_specint(name, scale=0.1)
        length = estimate_dynamic_length(program)
        assert length > 500

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_specint("nonesuch")

    def test_dhrystone_and_coremark(self):
        for program in (build_dhrystone(scale=0.1), build_coremark(scale=0.1)):
            assert estimate_dynamic_length(program) > 500

    def test_deterministic_given_seed(self):
        a = build_specint("xz", scale=0.1)
        b = build_specint("xz", scale=0.1)
        assert a.instructions == b.instructions
        assert a.data == b.data

    def test_scale_changes_length(self):
        short = estimate_dynamic_length(build_specint("mcf", scale=0.1))
        longer = estimate_dynamic_length(build_specint("mcf", scale=0.3))
        assert longer > 2 * short

    def test_benchmarks_have_distinct_characters(self):
        """exchange2 (loopy) must have a lower hard-branch share than
        deepsjeng (search)."""
        from repro.isa import run_program

        def taken_rate_variability(name):
            trace = run_program(build_specint(name, scale=0.08))
            outcomes = {}
            for r in trace:
                if r.instr.is_cond_branch:
                    outcomes.setdefault(r.pc, []).append(r.taken)
            # fraction of branch sites with mixed outcomes
            mixed = sum(1 for v in outcomes.values() if 0 < sum(v) < len(v))
            return mixed / len(outcomes)

        assert taken_rate_variability("deepsjeng") >= taken_rate_variability("exchange2")
