"""Tests for the pluggable execution-backend layer (``repro.backends``).

The load-bearing guarantee: the ``replay`` backend — columnar walk, no
interpreter, branchless packets skipped — reproduces the ``trace``
backend's branch and mispredict counts bit for bit, for every preset,
with and without the fast path's gating conditions, and across a
save/load process boundary.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import cli, presets
from repro.backends import (
    DEFAULT_BACKEND,
    RunLimits,
    backend_names,
    get_backend,
)
from repro.backends.packets import drive_stream, program_packets
from repro.backends.replay import drive_columns, trace_packets, trace_stream
from repro.backends.trace import TraceBackend
from repro.components.library import standard_library
from repro.core.composer import ComposerConfig, compose
from repro.core.interface import PredictorComponent, StorageReport
from repro.eval.runner import run_workload
from repro.kernels.engine import TraceColumns, engine_for
from repro.eval.tracesim import TraceResult
from repro.isa.program import Program
from repro.workloads.micro import build_micro
from repro.workloads.registry import (
    WorkloadSource,
    build_workload,
    resolve_workload,
    workload_names,
)
from repro.workloads.traces import BranchTrace, capture_trace

BUDGET = 8_000


@pytest.fixture(scope="module")
def micro_program():
    return build_micro("counted_loops", scale=0.2)


@pytest.fixture(scope="module")
def micro_npz(micro_program, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "counted_loops.npz"
    capture_trace(micro_program, max_instructions=BUDGET).save(path)
    return path


def counts(result):
    return (result.branches, result.branch_mispredicts, result.instructions)


# ----------------------------------------------------------------------
# Registry and source resolution
# ----------------------------------------------------------------------
class TestRegistry:
    def test_backend_registry_names(self):
        assert set(backend_names()) == {"cycle", "trace", "replay"}
        assert DEFAULT_BACKEND == "cycle"
        with pytest.raises(KeyError, match="unknown execution backend"):
            get_backend("emulate")

    def test_resolve_name_builds_program(self):
        source = resolve_workload("dispatch", scale=0.2)
        assert source.program is not None and source.trace_path is None

    def test_resolve_program_and_source_pass_through(self, micro_program):
        source = resolve_workload(micro_program)
        assert source.program is micro_program
        assert resolve_workload(source) is source

    def test_resolve_npz_path_is_trace(self, micro_npz):
        source = resolve_workload(str(micro_npz))
        assert source.trace_path == str(micro_npz)
        assert source.program is None
        assert source.name == "counted_loops"

    def test_unknown_workload_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_workload("solitaire")
        assert "counted_loops" in workload_names()

    def test_cycle_backend_rejects_stored_trace(self, micro_npz):
        source = WorkloadSource(name="t", trace_path=micro_npz)
        with pytest.raises(ValueError, match="needs a Program"):
            get_backend("cycle").run(
                presets.build("b2"), source, RunLimits(max_instructions=1000)
            )


# ----------------------------------------------------------------------
# Bit-identity of the trace-driven backends
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("preset", presets.PRESET_NAMES)
    def test_replay_matches_trace_per_preset(
        self, preset, micro_program, micro_npz
    ):
        limits = RunLimits(max_instructions=BUDGET)
        live = WorkloadSource(name="m", program=micro_program)
        stored = WorkloadSource(name="m", trace_path=micro_npz)
        t = get_backend("trace").run(presets.build(preset), live, limits)
        r = get_backend("replay").run(presets.build(preset), stored, limits)
        assert counts(t) == counts(r)
        assert t.branches > 0 and t.branch_mispredicts > 0
        assert t.backend == "trace" and r.backend == "replay"

    def test_columnar_walker_matches_stream_walkers(self, micro_program):
        """drive_columns == drive_stream, skipping or not."""
        trace = capture_trace(micro_program, max_instructions=BUDGET)
        walked = {}
        for label in ("columns", "skip", "full"):
            predictor = presets.build("b2")
            packets = trace_packets(trace, predictor.config.fetch_width)
            if label == "columns":
                w = drive_columns(predictor, trace, packets, BUDGET)
            else:
                w = drive_stream(
                    predictor,
                    trace_stream(trace, BUDGET),
                    packets,
                    skip_inert=(label == "skip"),
                )
            walked[label] = (w.instructions, w.branches, w.mispredicts)
        assert walked["columns"] == walked["skip"] == walked["full"]

    def test_stale_history_window_gates_the_skip(self, micro_program):
        """``no_replay`` repair keeps post-mispredict queries exact."""
        trace = capture_trace(micro_program, max_instructions=BUDGET)
        results = []
        for use_columns in (True, False):
            predictor = presets.build("b2", ghist_repair_mode="no_replay")
            packets = trace_packets(trace, predictor.config.fetch_width)
            if use_columns:
                w = drive_columns(predictor, trace, packets, BUDGET)
            else:
                w = drive_stream(
                    predictor, trace_stream(trace, BUDGET), packets
                )
            results.append(
                (w.instructions, w.branches, w.mispredicts,
                 predictor.stats.stale_history_queries)
            )
        assert results[0] == results[1]
        assert results[0][3] > 0  # the window was actually exercised

    def test_telemetry_forces_the_fallback_walker_and_matches(
        self, micro_program, micro_npz
    ):
        limits = RunLimits(max_instructions=BUDGET)
        stored = WorkloadSource(name="m", trace_path=micro_npz)
        bare = get_backend("replay").run(
            presets.build("b2"), stored, limits
        )
        from repro.frontend.config import CoreConfig

        with_tel = get_backend("replay").run(
            presets.build("b2"),
            stored,
            limits,
            core_config=CoreConfig(telemetry=True),
        )
        assert counts(bare) == counts(with_tel)
        assert with_tel.telemetry is not None and bare.telemetry is None

    def test_scalar_pipeline_replay_matches_trace(self, micro_program):
        """fetch_width=1: the backend-overhead benchmark configuration."""
        def scalar_bimodal():
            library = standard_library(
                fetch_width=1, global_history_bits=16, gtag_history_bits=16
            )
            return compose(
                "BIM2",
                library,
                ComposerConfig(fetch_width=1, global_history_bits=16),
            )

        limits = RunLimits(max_instructions=BUDGET)
        live = WorkloadSource(name="m", program=micro_program)
        trace = capture_trace(micro_program, max_instructions=BUDGET)
        t = get_backend("trace").run(scalar_bimodal(), live, limits)
        predictor = scalar_bimodal()
        w = drive_columns(predictor, trace, trace_packets(trace, 1), BUDGET)
        assert counts(t) == (w.branches, w.mispredicts, w.instructions)


# ----------------------------------------------------------------------
# Capture -> save -> load -> replay round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_replay_across_processes(self, micro_program, micro_npz):
        reference = get_backend("trace").run(
            presets.build("tage_l"),
            WorkloadSource(name="m", program=micro_program),
            RunLimits(max_instructions=BUDGET),
        )
        script = (
            "from repro.eval.runner import run_workload\n"
            f"r = run_workload('tage_l', {str(micro_npz)!r}, "
            f"max_instructions={BUDGET}, backend='replay')\n"
            "print(r.branches, r.branch_mispredicts, r.instructions)\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src)},
        )
        assert proc.returncode == 0, proc.stderr
        assert tuple(map(int, proc.stdout.split())) == counts(reference)

    def test_schema1_trace_loads_but_cannot_replay(self, tmp_path):
        legacy = BranchTrace(
            pcs=np.array([4, 9], dtype=np.int64),
            types=np.zeros(2, dtype=np.uint8),
            taken=np.array([True, False]),
            targets=np.array([9, 10], dtype=np.int64),
            instruction_count=12,
        )
        path = tmp_path / "legacy.npz"
        legacy.save(path)
        loaded = BranchTrace.load(path)
        assert not loaded.replayable
        assert loaded.characterize()["branches"] == 2.0
        with pytest.raises(ValueError, match="schema-1"):
            get_backend("replay").run(
                presets.build("b2"),
                WorkloadSource(name="legacy", trace_path=path),
                RunLimits(max_instructions=12),
            )

    def test_run_workload_replay_equals_trace(self, micro_program, micro_npz):
        t = run_workload(
            "b2", micro_program, max_instructions=BUDGET, backend="trace"
        )
        r = run_workload(
            "b2", str(micro_npz), max_instructions=BUDGET, backend="replay"
        )
        assert counts(t) == counts(r)
        assert (t.cycles, t.ipc, t.flushes) == (0, 0.0, 0)


# ----------------------------------------------------------------------
# Metrics semantics
# ----------------------------------------------------------------------
# ----------------------------------------------------------------------
# Batch-kernel segment engine: cut edge cases
# ----------------------------------------------------------------------
class _NotTakenKernel:
    """Columnar twin of :class:`_NotTaken` (always predicts not-taken)."""

    def __init__(self, component):
        self.c = component

    def lookup(self, ctx, state):
        out = state.copy()
        sel = ctx.lane_valid & ~out.is_jump
        out.hit = out.hit | sel
        out.taken = np.where(sel, False, out.taken)
        return out

    def mutates(self, ctx):
        return np.zeros(ctx.P, dtype=bool)

    def commit(self, ctx, accepted):
        pass


class _NotTaken(PredictorComponent):
    """Stateless always-not-taken: every taken branch mispredicts."""

    def lookup(self, req, predict_in):
        out = predict_in[0].copy()
        for slot in out.slots:
            if slot.is_jump:
                continue
            slot.hit = True
            slot.taken = False
        return out, 0

    def storage(self):
        return StorageReport(self.name, sram_bits=0)

    def columnar_kernel(self):
        return _NotTakenKernel(self)


class TestKernelSegmentEdges:
    def test_zero_length_segment_when_first_packet_mispredicts(
        self, micro_program
    ):
        """An attempt whose first packet is impure accepts nothing and has
        no side effects — the driver walks that packet scalar instead."""
        trace = capture_trace(
            build_micro("steady_loop", scale=0.2), max_instructions=BUDGET
        )
        predictor = presets.build("b2")
        engine = engine_for(predictor)
        assert engine is not None
        cols = TraceColumns.from_trace(trace)
        bi, pc, remaining = 0, trace.entry_pc, BUDGET
        seg = engine.run(cols, pc, bi, min(64, cols.n_records), remaining)
        guard = 0
        while seg.packets and not seg.impure_next and guard < 100:
            bi += seg.records
            pc = seg.next_pc
            remaining -= seg.instructions
            seg = engine.run(
                cols, pc, bi, min(64, cols.n_records - bi), remaining
            )
            guard += 1
        # The engine stopped right before a known-impure packet (a cold
        # bimodal mispredicts steady_loop's first taken back-edge).
        assert seg.impure_next
        if seg.packets:
            bi += seg.records
            pc = seg.next_pc
            remaining -= seg.instructions
        before = predictor.stats.predictions
        again = engine.run(cols, pc, bi, min(64, cols.n_records - bi), remaining)
        assert (again.packets, again.records, again.instructions) == (0, 0, 0)
        assert again.branches == 0
        assert again.impure_next
        # A zero-accept attempt must not move any counter or table.
        assert predictor.stats.predictions == before

    @pytest.mark.parametrize("window", [1, 2, 3, 8])
    def test_segment_against_no_replay_window_boundary(self, window):
        """Stale no-replay windows gate the engine; for every corruption
        window length the kernel walk, the scalar columnar walk, and the
        full stream walk agree bit for bit — including segments that end
        exactly where a window opens or closes."""
        trace = capture_trace(
            build_micro("counted_loops", scale=0.2), max_instructions=BUDGET
        )
        sigs = []
        stale = []
        for mode in ("kernel", "scalar", "stream"):
            predictor = presets.build(
                "b2",
                ghist_repair_mode="no_replay",
                ghist_corruption_window=window,
            )
            packets = trace_packets(trace, predictor.config.fetch_width)
            if mode == "stream":
                w = drive_stream(
                    predictor, trace_stream(trace, BUDGET), packets
                )
            else:
                engine = engine_for(predictor) if mode == "kernel" else None
                w = drive_columns(predictor, trace, packets, BUDGET, engine=engine)
            sigs.append((w.instructions, w.branches, w.mispredicts))
            stale.append(predictor.stats.stale_history_queries)
        assert sigs[0] == sigs[1] == sigs[2], f"window={window}"
        assert stale[0] == stale[1] == stale[2], f"window={window}"
        assert stale[0] > 0

    def test_all_mispredicts_degrade_to_scalar_without_double_counting(self):
        """When (nearly) every branch mispredicts, every attempt cuts at
        its first packet; the driver must fall back to the scalar walk
        with identical instruction/branch/mispredict accounting."""
        trace = capture_trace(
            build_micro("steady_loop", scale=0.2), max_instructions=BUDGET
        )

        def build():
            library = standard_library().with_params(
                "NT", lambda name, lat: _NotTaken(name, lat)
            )
            return compose("NT2", library, ComposerConfig())

        results = []
        for use_engine in (True, False):
            predictor = build()
            engine = engine_for(predictor) if use_engine else None
            if use_engine:
                assert engine is not None
            packets = trace_packets(trace, predictor.config.fetch_width)
            w = drive_columns(predictor, trace, packets, BUDGET, engine=engine)
            results.append((w.instructions, w.branches, w.mispredicts))
        assert results[0] == results[1]
        instructions, branches, mispredicts = results[0]
        assert branches > 0
        # steady_loop back-edges are taken: an always-not-taken payload
        # mispredicts nearly everything.
        assert mispredicts >= 0.9 * branches
        assert instructions <= BUDGET


class TestMetrics:
    def test_trace_result_mpki_is_per_instruction(self):
        result = TraceResult(branches=200, mispredicts=10, instructions=4000)
        assert result.mpki == pytest.approx(2.5)
        assert result.mpki_per_branch == pytest.approx(50.0)
        assert result.accuracy == pytest.approx(0.95)

    def test_trace_result_mpki_zero_without_instruction_count(self):
        legacy = TraceResult(branches=200, mispredicts=10)
        assert legacy.mpki == 0.0
        assert legacy.mpki_per_branch == pytest.approx(50.0)

    def test_counts_result_mpki_uses_instructions(self, micro_program):
        r = run_workload(
            "b2", micro_program, max_instructions=BUDGET, backend="trace"
        )
        assert r.mpki == pytest.approx(
            1000.0 * r.branch_mispredicts / r.instructions
        )

    def test_trace_backend_applies_default_budget(self):
        # A 6-instruction program halts long before the default cap.
        program = build_micro("steady_loop", scale=0.1)
        backend = TraceBackend()
        result = backend.run(
            presets.build("b2"),
            WorkloadSource(name="m", program=program),
            RunLimits(),
        )
        assert 0 < result.instructions <= 1_000_000


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCli:
    def test_trace_capture_then_replay(self, tmp_path, capsys):
        npz = tmp_path / "dispatch.npz"
        rc = cli.main(
            ["trace", "capture", "--workload", "dispatch", "--scale", "0.2",
             "--out", str(npz), "--max-instructions", str(BUDGET)]
        )
        assert rc == 0 and npz.exists()
        capture_out = capsys.readouterr().out
        assert "captured" in capture_out

        rc = cli.main(
            ["trace", "replay", str(npz), "--predictor", "b2",
             "--max-instructions", str(BUDGET)]
        )
        assert rc == 0
        replay_out = capsys.readouterr().out
        assert "backend: replay" in replay_out

    def test_run_backend_flag_reproduces_counts(self, tmp_path, capsys):
        npz = tmp_path / "m.npz"
        rc = cli.main(
            ["trace", "capture", "--workload", "counted_loops", "--scale",
             "0.2", "--out", str(npz), "--max-instructions", str(BUDGET)]
        )
        assert rc == 0
        capsys.readouterr()

        outputs = {}
        for backend, workload in (
            ("trace", "counted_loops"),
            ("replay", str(npz)),
        ):
            rc = cli.main(
                ["run", "--predictor", "b2", "--workload", workload,
                 "--scale", "0.2", "--backend", backend,
                 "--max-instructions", str(BUDGET)]
            )
            assert rc == 0
            outputs[backend] = capsys.readouterr().out
            assert f"backend: {backend}" in outputs[backend]

        def extract(text, field):
            for token in text.split():
                if token.startswith(field + "="):
                    return int(token.split("=")[1])
            raise AssertionError(f"{field} not in output")

        for field in ("branches", "mispredicts"):
            assert extract(outputs["trace"], field) == extract(
                outputs["replay"], field
            )

    def test_capture_refuses_trace_input(self, tmp_path, capsys):
        npz = tmp_path / "x.npz"
        capture_trace(
            build_micro("dispatch", scale=0.2), max_instructions=1000
        ).save(npz)
        rc = cli.main(
            ["trace", "capture", "--workload", str(npz), "--out",
             str(tmp_path / "y.npz")]
        )
        assert rc == 2
        assert "already a stored trace" in capsys.readouterr().err
