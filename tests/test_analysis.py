"""Tests for the static-analysis subsystem (``repro check``).

Two-sided coverage: every shipped preset and library component passes
clean, and every rule code fires on a committed violation fixture.
"""

import json
from pathlib import Path

import pytest

from repro import cli, presets
from repro.analysis import (
    DIAGNOSTIC_SCHEMA,
    RULES,
    check_component,
    check_library,
    check_spec,
    check_topology,
    exit_code,
    filter_ignored,
    state_fingerprint,
    to_json,
    validate_report,
)
from repro.analysis.diagnostics import diagnostic
from repro.analysis.lints import lint_paths
from repro.components.library import standard_library
from repro.core.composer import ComposerConfig
from repro.core.topology import Leaf, Override

from tests.fixtures import bad_components

FIXTURES = Path(__file__).parent / "fixtures"
LINT_FIXTURES = FIXTURES / "lint"


def codes(diags):
    return [d.code for d in diags]


# ----------------------------------------------------------------------
# The shipped tree is clean
# ----------------------------------------------------------------------
class TestShippedTreeClean:
    def test_library_components_pass_contract_harness(self):
        assert check_library() == []

    def test_source_tree_passes_lints(self):
        assert lint_paths() == []

    @pytest.mark.parametrize("name", presets.PRESET_NAMES)
    def test_preset_topologies_pass(self, name):
        predictor = presets.build(name)
        assert check_topology(predictor.topology, predictor.config) == []


# ----------------------------------------------------------------------
# Topology rules
# ----------------------------------------------------------------------
class TestTopologyRules:
    def test_top000_parse_failure_carries_column(self):
        diags = check_spec("TAGE3 > > BIM2")
        assert codes(diags) == ["TOP000"]
        assert diags[0].severity == "error"
        assert diags[0].col is not None

    def test_top000_unknown_component(self):
        assert codes(check_spec("NOPE2 > BIM2")) == ["TOP000"]

    def test_top001_latency_inversion_warns(self):
        diags = check_spec("UBTB1 > GSHARE2 > BTB2")
        assert "TOP001" in codes(diags)
        assert all(d.severity == "warn" for d in diags)

    def test_top002_slow_arbitration_child(self):
        diags = check_spec("TOURNEY2 > [GBIM3 > BTB2, LBIM2]")
        top002 = [d for d in diags if d.code == "TOP002"]
        assert len(top002) == 1
        assert top002[0].severity == "error"
        assert "gbim" in top002[0].message

    def test_top003_meta_width_mismatch(self):
        bad = bad_components.MiscountedMeta("liar", 2)
        diags = check_topology(Leaf(bad))
        assert "TOP003" in codes(diags)

    def test_top004_shadowed_by_total_predictor(self):
        diags = check_spec("BIM2 > TAGE3 > BTB2")
        shadowed = [d for d in diags if d.code == "TOP004"]
        assert len(shadowed) == 1
        assert "tage" in shadowed[0].message

    def test_top004_not_raised_for_tagged_head(self):
        # GTAG misses on a cold table, so nothing below it is shadowed.
        diags = check_spec("GTAG2 > TAGE3 > BTB2")
        assert "TOP004" not in codes(diags)

    def test_top005_no_target_provider(self):
        assert "TOP005" in codes(check_spec("GSHARE2"))
        assert "TOP005" not in codes(check_spec("BTB2 > BIM2"))

    def test_top006_history_demand_unsatisfiable(self):
        config = ComposerConfig(global_history_bits=16)
        diags = check_spec("TAGE3 > BTB2 > BIM2", config=config)
        top006 = [d for d in diags if d.code == "TOP006"]
        assert len(top006) == 1
        assert "64" in top006[0].message and "16" in top006[0].message

    def test_top006_satisfied_by_default_config(self):
        assert check_spec("TAGE3 > BTB2 > BIM2") == []

    def test_top007_meta_budget(self):
        spec = "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
        assert "TOP007" in codes(check_spec(spec, meta_budget=32))
        assert "TOP007" not in codes(check_spec(spec))

    def test_override_of_total_same_latency_not_shadowed(self):
        # Equal latency still feeds predict_in, so no TOP004.
        diags = check_spec("BIM2 > GSHARE2")
        assert "TOP004" not in codes(diags)


# ----------------------------------------------------------------------
# Component contract rules
# ----------------------------------------------------------------------
class TestContractRules:
    @pytest.mark.parametrize("code", sorted(bad_components.VIOLATIONS))
    def test_each_violation_fixture_fires_its_rule(self, code):
        base, cls = bad_components.VIOLATIONS[code]
        diags = check_component(lambda name, lat: cls(name, lat), base)
        assert code in codes(diags), (
            f"{cls.__name__} should trip {code}, got {codes(diags)}"
        )

    def test_jump_clobbering_is_con002(self):
        diags = check_component(
            lambda name, lat: bad_components.JumpClobberer(name, lat), "CLOB"
        )
        assert "CON002" in codes(diags)

    def test_violations_are_specific(self):
        # A fixture must not spray unrelated diagnostics: each one trips
        # only the rule it was built to violate.
        for code, (base, cls) in bad_components.VIOLATIONS.items():
            diags = check_component(lambda name, lat: cls(name, lat), base)
            assert codes(diags) == [code], (
                f"{cls.__name__}: expected exactly [{code}], "
                f"got {codes(diags)}"
            )

    def test_state_fingerprint_distinguishes_state(self):
        a = bad_components.LeakyReset("x", 2)
        b = bad_components.LeakyReset("x", 2)
        assert state_fingerprint(a) == state_fingerprint(b)
        a._seen.append(4)
        assert state_fingerprint(a) != state_fingerprint(b)

    def test_check_library_accepts_custom_library(self):
        library = standard_library().with_params(
            "LEAKY",
            lambda name, lat: bad_components.LeakyReset(name, lat),
        )
        diags = check_library(library)
        assert "CON004" in codes(diags)


# ----------------------------------------------------------------------
# Lint rules
# ----------------------------------------------------------------------
class TestLintRules:
    @pytest.fixture(scope="class")
    def fixture_diags(self):
        return lint_paths([str(LINT_FIXTURES)])

    def test_rpr001_fires_on_entropy_fixture(self, fixture_diags):
        hits = [
            d for d in fixture_diags
            if d.code == "RPR001" and "rpr001" in (d.file or "")
        ]
        assert len(hits) == 4  # random, time, np.random, numpy alias
        assert all(d.line is not None and d.col is not None for d in hits)

    def test_rpr002_fires_on_defaults_fixture(self, fixture_diags):
        hits = [d for d in fixture_diags if d.code == "RPR002"]
        assert len(hits) == 3  # literal, kw-only, list() call

    def test_rpr003_fires_on_fire_fixture(self, fixture_diags):
        hits = [d for d in fixture_diags if d.code == "RPR003"]
        names = {d.message.split()[1] for d in hits}
        assert names == {"SpeculatesWithoutRepair", "Intermediate"}

    def test_rpr004_fires_on_mutation_fixture(self, fixture_diags):
        hits = [d for d in fixture_diags if d.code == "RPR004"]
        assert len(hits) == 2  # assignment + append

    def test_noqa_suppression(self, fixture_diags):
        # Every fixture contains a suppressed violation on a noqa line.
        flagged_lines = {
            (Path(d.file).name, d.line) for d in fixture_diags if d.file
        }
        assert ("rpr001_entropy.py", 34) not in flagged_lines
        suppressed_sources = [
            line
            for path in LINT_FIXTURES.glob("*.py")
            for line in path.read_text().splitlines()
            if "repro: noqa" in line
        ]
        assert len(suppressed_sources) >= 3

    def test_explicit_file_gets_full_rule_set(self, tmp_path):
        source = tmp_path / "snippet.py"
        source.write_text("import time\n\ndef f():\n    return time.time()\n")
        diags = lint_paths([str(source)])
        assert codes(diags) == ["RPR001"]


# ----------------------------------------------------------------------
# Diagnostics model, JSON schema, exit codes
# ----------------------------------------------------------------------
class TestDiagnosticsModel:
    def test_rule_catalog_covers_every_emitted_code(self):
        assert set(RULES) == {
            *(f"TOP{n:03d}" for n in range(8)),
            *(f"CON{n:03d}" for n in range(1, 10)),
            *(f"RPR{n:03d}" for n in range(1, 6)),
            *(f"SPEC{n:03d}" for n in range(1, 9)),
        }

    def test_exit_codes(self):
        warn = diagnostic("TOP001", "m", "s")
        err = diagnostic("TOP002", "m", "s")
        assert exit_code([]) == 0
        assert exit_code([warn]) == 0
        assert exit_code([warn], strict=True) == 1
        assert exit_code([err]) == 1

    def test_filter_ignored(self):
        diags = [diagnostic("TOP001", "m", "s"), diagnostic("TOP002", "m", "s")]
        kept = filter_ignored(diags, ["top001"])
        assert codes(kept) == ["TOP002"]

    def test_json_report_validates_against_schema(self):
        diags = check_spec("TOURNEY2 > [GBIM3, LBIM2]")
        document = json.loads(to_json(diags))
        assert validate_report(document) == []
        assert document["errors"] == 1
        assert document["warnings"] == 1
        required = DIAGNOSTIC_SCHEMA["required"]
        assert all(key in document for key in required)

    def test_validate_report_rejects_malformed_documents(self):
        assert validate_report([]) != []
        assert validate_report({"version": 2}) != []
        bad_entry = {
            "version": 1,
            "errors": 0,
            "warnings": 0,
            "diagnostics": [{"code": "X1", "severity": "fatal"}],
        }
        problems = validate_report(bad_entry)
        assert any("malformed" in p for p in problems)
        assert any("severity" in p for p in problems)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCheckCli:
    def test_clean_spec_exits_zero(self, capsys):
        rc = cli.main(["check", "--topology", "TAGE3 > BTB2 > BIM2"])
        assert rc == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_spec_exits_nonzero(self, capsys):
        rc = cli.main(["check", "--topology", "TOURNEY2 > [GBIM3, LBIM2]"])
        assert rc == 1
        assert "TOP002" in capsys.readouterr().out

    def test_warn_spec_needs_strict_to_fail(self, capsys):
        argv = ["check", "--topology", "UBTB1 > GSHARE2 > BTB2"]
        assert cli.main(argv) == 0
        assert cli.main(argv + ["--strict"]) == 1
        assert "TOP001" in capsys.readouterr().out

    def test_preset_name_with_history_override(self, capsys):
        rc = cli.main(["check", "--topology", "tage_l", "--ghist-bits", "16"])
        assert rc == 1
        assert "TOP006" in capsys.readouterr().out

    def test_meta_budget_flag(self, capsys):
        rc = cli.main(
            ["check", "--topology", "tage_l", "--meta-budget", "32",
             "--strict"]
        )
        assert rc == 1
        assert "TOP007" in capsys.readouterr().out

    def test_ignore_flag_drops_codes(self):
        rc = cli.main(
            ["check", "--topology", "TOURNEY2 > [GBIM3, LBIM2]",
             "--ignore", "TOP002", "TOP005"]
        )
        assert rc == 0

    def test_json_output_is_schema_valid(self, capsys):
        rc = cli.main(
            ["check", "--topology", "tage_l", "--ghist-bits", "16", "--json"]
        )
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert validate_report(document) == []
        assert document["errors"] == 1

    def test_lint_path_flag(self, capsys):
        rc = cli.main(
            ["check", "--lint",
             "--lint-path", str(LINT_FIXTURES / "rpr002_defaults.py")]
        )
        assert rc == 1
        assert "RPR002" in capsys.readouterr().out

    def test_no_selection_is_usage_error(self, capsys):
        assert cli.main(["check"]) == 2

    def test_all_passes_clean_on_shipped_tree(self, capsys):
        assert cli.main(["check", "--all", "--strict"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out
