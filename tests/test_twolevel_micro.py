"""Tests for the Yeh-Patt two-level predictors and the micro-workloads."""

import pytest

from repro.components.twolevel import TwoLevel, VARIANTS
from repro.core import compose
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import InterfaceError
from repro.core.prediction import PredictionVector
from repro.eval import run_workload
from repro.isa import Interpreter, Opcode
from repro.workloads.micro import MICRO_NAMES, build_all_micro, build_micro


def branch_base(pc=0, width=4):
    base = PredictionVector.fallthrough(pc, width)
    base.slots[0].hit = True
    base.slots[0].is_branch = True
    return base


def step(two_level, taken, pc=0, ghist=0, train=True):
    """One predict/fire/commit round for the branch at slot 0."""
    out, meta = two_level.lookup(PredictRequest(pc, 4, ghist), [branch_base(pc)])
    predicted = out.slots[0].taken
    bundle = UpdateBundle(
        fetch_pc=pc, width=4, ghist=ghist, meta=meta,
        br_mask=(True, False, False, False),
        taken_mask=(taken, False, False, False),
        mispredicted=predicted != taken,
        mispredict_idx=0 if predicted != taken else None,
    )
    two_level.fire(bundle)
    if train:
        two_level.on_update(bundle)
    return predicted, meta


class TestTwoLevel:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_learns_periodic_pattern(self, variant):
        two_level = TwoLevel("tl", variant=variant, history_bits=8,
                             l2_sets_per_table=256, l2_tables=4)
        pattern = [True, True, False, False]
        ghist = 0
        wrong_late = 0
        for i in range(600):
            taken = pattern[i % 4]
            predicted, _ = step(two_level, taken, ghist=ghist)
            if i >= 300 and predicted != taken:
                wrong_late += 1
            ghist = ((ghist << 1) | int(taken)) & 0xFF
        assert wrong_late <= 4

    def test_pag_repair_restores_history(self):
        two_level = TwoLevel("tl", variant="PAg", history_bits=8,
                             l2_sets_per_table=256)
        # Fire speculatively, then repair: level-1 history must return to
        # the predict-time value from metadata.
        out, meta = two_level.lookup(PredictRequest(0, 4, 0), [branch_base()])
        index = two_level._l1_index(0)
        before = int(two_level._l1[index])
        bundle = UpdateBundle(
            fetch_pc=0, width=4, meta=meta,
            br_mask=(True, False, False, False),
            taken_mask=(True, False, False, False),
        )
        two_level.fire(bundle)
        assert int(two_level._l1[index]) != before or before == 1  # shifted
        two_level.on_repair(bundle)
        assert int(two_level._l1[index]) == before

    def test_gag_ignores_fire(self):
        two_level = TwoLevel("tl", variant="GAg", history_bits=8,
                             l2_sets_per_table=256)
        out, meta = two_level.lookup(PredictRequest(0, 4, 0b1010), [branch_base()])
        bundle = UpdateBundle(
            fetch_pc=0, width=4, ghist=0b1010, meta=meta,
            br_mask=(True, False, False, False),
            taken_mask=(True, False, False, False),
        )
        two_level.fire(bundle)  # must not touch anything
        assert (two_level._l1 == 0).all()

    def test_invalid_variant_rejected(self):
        with pytest.raises(InterfaceError):
            TwoLevel("tl", variant="XAx")

    def test_history_longer_than_table_rejected(self):
        with pytest.raises(InterfaceError):
            TwoLevel("tl", history_bits=12, l2_sets_per_table=256)

    def test_storage_by_variant(self):
        gag = TwoLevel("a", variant="GAg").storage()
        pap = TwoLevel("b", variant="PAp").storage()
        assert gag.breakdown["l1_histories"] == 0
        assert pap.breakdown["l1_histories"] > 0
        assert pap.total_bits > gag.total_bits

    def test_composes_and_runs(self):
        program = build_micro("pattern_short", scale=0.3)
        result = run_workload(
            compose("PAG3 > BTB2 > BIM2"), program, system_name="pag"
        )
        assert result.branch_accuracy > 0.85


class TestMicroWorkloads:
    @pytest.mark.parametrize("name", MICRO_NAMES)
    def test_every_micro_builds_and_halts(self, name):
        program = build_micro(name, scale=0.2)
        trace = list(Interpreter(program).run(500_000))
        assert trace[-1].instr.op is Opcode.HALT

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_micro("quantum")

    def test_build_all(self):
        programs = build_all_micro(scale=0.1)
        assert set(programs) == set(MICRO_NAMES)

    def test_random_micro_is_actually_hard(self):
        program = build_micro("random", scale=0.4)
        result = run_workload("tage_l", program)
        assert result.branch_accuracy < 0.9  # ~50% branches are coin flips

    def test_pattern_micro_is_learnable(self):
        program = build_micro("pattern_short", scale=0.4)
        result = run_workload("tage_l", program)
        assert result.branch_accuracy > 0.93
