"""Tests for the evaluation harness, trace simulator, area model, and
commercial-core proxies."""

import pytest

from repro import presets
from repro.baselines import graviton_proxy, skylake_proxy
from repro.eval import (
    harmonic_mean,
    run_suite,
    run_workload,
    trace_accuracy,
)
from repro.eval.comparison import evaluated_systems, format_table
from repro.eval.metrics import arithmetic_mean
from repro.frontend import CoreConfig
from repro.isa import ProgramBuilder
from repro.synthesis import AreaModel, SramMacroModel, bar_chart, format_breakdown
from repro.synthesis.report import format_matrix
from repro.workloads import build_dhrystone


def tiny_program(n=80):
    b = ProgramBuilder("tiny")
    b.li(1, 0)
    b.li(2, n)
    b.label("top")
    b.andi(3, 1, 3)
    b.beq(3, 0, "skip")
    b.addi(4, 4, 1)
    b.label("skip")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    return b.build()


class TestMetrics:
    def test_harmonic_mean(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0

    def test_run_result_row_renders(self):
        result = run_workload("b2", tiny_program())
        assert "IPC=" in result.row()
        assert result.system == "b2"


class TestRunner:
    def test_run_workload_by_name(self):
        result = run_workload("tage_l", tiny_program())
        assert result.instructions > 0
        assert 0 < result.branch_accuracy <= 1

    def test_run_workload_with_instance(self):
        pred = presets.build("b2")
        result = run_workload(pred, tiny_program(), system_name="mine")
        assert result.system == "mine"

    def test_run_suite_shape(self):
        programs = {"tiny": tiny_program()}
        results = run_suite(["b2", "tourney"], programs)
        assert set(results) == {"b2", "tourney"}
        assert "tiny" in results["b2"]

    def test_run_suite_with_custom_system(self):
        spec = ("custom", lambda: presets.build("b2"), CoreConfig(decode_width=2))
        results = run_suite([spec], {"tiny": tiny_program()})
        assert results["custom"]["tiny"].ipc > 0


class TestTraceSim:
    def test_trace_counts_branches(self):
        program = tiny_program(100)
        result = trace_accuracy(presets.build("tage_l"), program)
        # 100 loop back-edges + 100 mod-4 branches
        assert result.branches == 200

    def test_trace_learns_periodic_pattern(self):
        program = tiny_program(200)
        result = trace_accuracy(presets.build("tage_l"), program)
        assert result.accuracy > 0.9

    def test_trace_vs_core_modeling_gap_exists(self):
        """§II-B: trace-driven simulation mismodels speculative execution;
        the two methodologies must be close but not identical on a workload
        with mispredictions."""
        program = build_dhrystone(scale=0.2)
        trace_result = trace_accuracy(presets.build("tage_l"), program)
        core_result = run_workload("tage_l", program)
        assert abs(trace_result.accuracy - core_result.branch_accuracy) < 0.2
        # The trace simulator sees no wrong-path pollution, so it is usually
        # (not tautologically) at least as accurate.
        assert trace_result.accuracy >= core_result.branch_accuracy - 0.02


class TestAreaModel:
    def test_sram_quantization_overhead(self):
        sram = SramMacroModel()
        tiny = sram.array_area(100)
        assert tiny > 100 * sram.um2_per_bit  # periphery dominates tiny arrays

    def test_array_area_monotonic(self):
        sram = SramMacroModel()
        assert sram.array_area(100_000) > sram.array_area(10_000)

    def test_dual_port_costs_more(self):
        sram = SramMacroModel()
        assert sram.array_area(8192, dual_port=True) > sram.array_area(8192)

    def test_fig8_relations(self):
        """Fig. 8: TAGE-L is the largest predictor; meta is non-trivial."""
        model = AreaModel()
        areas = {
            name: model.predictor_total(presets.build(name))
            for name in ("tourney", "b2", "tage_l")
        }
        assert areas["tage_l"] > areas["b2"]
        assert areas["tage_l"] > areas["tourney"]
        meta = model.predictor_breakdown(presets.build("tourney"))["meta"]
        assert meta > 0

    def test_fig9_predictor_is_small_core_fraction(self):
        """Fig. 9: even TAGE-L is a small portion of the core."""
        model = AreaModel()
        fraction = model.predictor_fraction(presets.build("tage_l"))
        assert fraction < 0.25

    def test_core_breakdown_contains_predictor(self):
        model = AreaModel()
        breakdown = model.core_breakdown(presets.build("b2"))
        assert "branch predictor" in breakdown
        assert "issue units" in breakdown

    def test_report_formatting(self):
        model = AreaModel()
        text = format_breakdown(model.predictor_breakdown(presets.build("b2")))
        assert "TOTAL" in text
        chart = bar_chart({"a": 1.0, "b": 2.0})
        assert "|" in chart
        matrix = format_matrix({"sys": {"w1": 1.0}})
        assert "sys" in matrix


class TestProxies:
    def test_proxies_build_and_run(self):
        program = tiny_program(60)
        for factory in (skylake_proxy, graviton_proxy):
            predictor, config = factory()
            result = run_workload(predictor, program, config)
            assert result.instructions > 0

    def test_wide_proxy_out_ipcs_narrow_on_easy_code(self):
        b = ProgramBuilder("alu")
        b.li(1, 0)
        b.li(2, 200)
        b.label("top")
        for reg in range(3, 11):
            b.addi(reg, reg, 1)
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        program = b.build()
        sky_pred, sky_cfg = skylake_proxy()
        grav_pred, grav_cfg = graviton_proxy()
        sky = run_workload(sky_pred, program, sky_cfg)
        grav = run_workload(grav_pred, program, grav_cfg)
        assert sky.ipc > grav.ipc

    def test_evaluated_systems_table(self):
        systems = evaluated_systems()
        assert len(systems) == 5
        names = {s.name for s in systems}
        assert {"skylake-proxy", "graviton-proxy", "TAGE-L", "B2", "Tournament"} <= names
        text = format_table(systems)
        assert "skylake-proxy" in text
