"""Tests for the composer: predict/fire/mispredict/commit protocol,
pre-decode fixups, history management, repair modes, storage reports."""

import pytest

from repro import presets
from repro.components.library import standard_library
from repro.core import (
    ComposerConfig,
    InterfaceError,
    PreDecodedSlot,
    compose,
)

BR = PreDecodedSlot(is_cond_branch=True, direct_target=100)
PLAIN = PreDecodedSlot()


def mk(topo="GSHARE2", **config):
    lib = standard_library(global_history_bits=config.get("global_history_bits", 64))
    return compose(topo, lib, ComposerConfig(**config))


def packet(*kinds):
    return list(kinds) + [PLAIN] * (4 - len(kinds))


class TestPredictContract:
    def test_wrong_span_rejected(self):
        pred = mk()
        with pytest.raises(InterfaceError):
            pred.predict(2, [PLAIN] * 4)  # pc 2 only spans 2 slots

    def test_mid_packet_span(self):
        pred = mk()
        result = pred.predict(2, [PLAIN, PLAIN])
        assert result.width == 2
        assert result.next_fetch_pc == 4
        pred.commit_packet(result.ftq_id)

    def test_full_history_file_rejects_predict(self):
        pred = mk(ftq_entries=2)
        pred.predict(0, [PLAIN] * 4)
        pred.predict(4, [PLAIN] * 4)
        assert not pred.can_predict
        with pytest.raises(InterfaceError):
            pred.predict(8, [PLAIN] * 4)

    def test_depth_is_max_latency(self):
        assert mk("GSHARE2").depth == 2
        assert presets.tage_l().depth == 3

    def test_staged_vectors_one_per_stage(self):
        result = mk("GSHARE2").predict(0, [PLAIN] * 4)
        assert len(result.staged) == 2


class TestPreDecode:
    def test_bogus_prediction_on_plain_slot_cleared(self):
        pred = mk()
        result = pred.predict(0, [PLAIN] * 4)
        assert result.final.cfi_index() is None
        assert result.next_fetch_pc == 4

    def test_jal_always_taken_with_static_target(self):
        pred = mk()
        jal = PreDecodedSlot(is_jal=True, direct_target=40)
        result = pred.predict(0, packet(PLAIN, jal))
        assert result.cut == 1
        assert result.next_fetch_pc == 40
        assert result.final.slots[1].is_jump

    def test_taken_branch_gets_direct_target(self):
        pred = mk("BIM2")  # PC-indexed: stable training index
        for _ in range(3):
            result = pred.predict(0, packet(BR))
            if not result.final.slots[0].taken:
                pred.resolve_mispredict(result.ftq_id, 0, True, 100)
            pred.commit_packet(result.ftq_id)
        result = pred.predict(0, packet(BR))
        assert result.final.slots[0].taken
        assert result.final.slots[0].target == 100
        assert result.next_fetch_pc == 100

    def test_ret_uses_ras_top(self):
        pred = mk()
        ret = PreDecodedSlot(is_jalr=True, is_ret=True)
        result = pred.predict(0, packet(ret), ras_top=55)
        assert result.next_fetch_pc == 55

    def test_jalr_without_target_falls_through(self):
        pred = mk()
        jalr = PreDecodedSlot(is_jalr=True)
        result = pred.predict(0, packet(jalr))
        assert result.next_fetch_pc == 4  # nowhere to go
        assert result.cut == 0

    def test_sfb_branch_invisible(self):
        pred = mk()
        sfb = PreDecodedSlot(is_cond_branch=True, direct_target=2, is_sfb=True)
        result = pred.predict(0, packet(sfb))
        assert result.final.cfi_index() is None
        entry = pred.history_file.get(result.ftq_id)
        assert entry.br_mask == (False, False, False, False)

    def test_invalid_slots_cleared(self):
        pred = mk()
        result = pred.predict(0, [PreDecodedSlot(valid=False)] * 4)
        assert result.final.cfi_index() is None


class TestHistoryManagement:
    def test_ghist_advances_with_predicted_direction(self):
        pred = mk()
        result = pred.predict(0, packet(BR))
        predicted = result.final.slots[0].taken
        assert pred._global.read() & 1 == int(predicted)

    def test_mispredict_restores_and_corrects_ghist(self):
        pred = mk()
        result = pred.predict(0, packet(BR))
        predicted = result.final.slots[0].taken
        # A few younger packets pollute the history.
        pred.predict(4, [PLAIN] * 4)
        y = pred.predict(8, packet(BR))
        pred.resolve_mispredict(result.ftq_id, 0, not predicted, 100 if not predicted else None)
        assert pred._global.read() & 1 == int(not predicted)
        # Younger entries were squashed.
        assert pred.history_file.find(y.ftq_id) is None

    def test_mispredict_truncates_entry(self):
        pred = mk()
        result = pred.predict(0, [BR, BR, PLAIN, PLAIN])
        entry = pred.history_file.get(result.ftq_id)
        assert entry.br_mask[:2] == (True, True)
        pred.resolve_mispredict(result.ftq_id, 0, True, 100)
        assert entry.br_mask == (True, False, False, False)
        assert entry.cfi_idx == 0 and entry.cfi_taken
        assert entry.mispredict_idx == 0

    def test_jalr_target_mispredict_keeps_direction(self):
        pred = mk()
        jalr = PreDecodedSlot(is_jalr=True)
        result = pred.predict(0, packet(jalr))
        pred.resolve_mispredict(result.ftq_id, 0, True, 60, is_direction_mispredict=False)
        entry = pred.history_file.get(result.ftq_id)
        assert entry.cfi_target == 60
        assert pred.stats.target_mispredicts == 1

    def test_commit_requires_head(self):
        pred = mk()
        a = pred.predict(0, [PLAIN] * 4)
        b = pred.predict(4, [PLAIN] * 4)
        with pytest.raises(InterfaceError):
            pred.commit_packet(b.ftq_id)
        pred.commit_packet(a.ftq_id)
        pred.commit_packet(b.ftq_id)

    def test_stats_counted(self):
        pred = mk()
        result = pred.predict(0, packet(BR))
        predicted = result.final.slots[0].taken
        pred.resolve_mispredict(result.ftq_id, 0, not predicted, None if predicted else 100)
        pred.commit_packet(result.ftq_id)
        assert pred.stats.predictions == 1
        assert pred.stats.direction_mispredicts == 1
        assert pred.stats.committed_packets == 1
        assert pred.stats.committed_branches == 1


class TestRepairModes:
    def test_replay_mode_reports_bubbles(self):
        pred = mk(ghist_repair_mode="replay", ghist_repair_bubbles=3)
        result = pred.predict(0, packet(BR))
        predicted = result.final.slots[0].taken
        resp = pred.resolve_mispredict(result.ftq_id, 0, not predicted,
                                       100 if not predicted else None)
        assert resp.extra_redirect_bubbles == 3

    def test_no_replay_mode_serves_stale_history(self):
        pred = mk(ghist_repair_mode="no_replay", ghist_corruption_window=2)
        result = pred.predict(0, packet(BR))
        predicted = result.final.slots[0].taken
        resp = pred.resolve_mispredict(result.ftq_id, 0, not predicted,
                                       100 if not predicted else None)
        assert resp.extra_redirect_bubbles == 0
        pred.commit_packet(result.ftq_id)
        pred.predict(0, packet(BR))
        pred.predict(4, [PLAIN] * 4)
        assert pred.stats.stale_history_queries == 2
        pred.predict(8, [PLAIN] * 4)
        assert pred.stats.stale_history_queries == 2  # window over

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ComposerConfig(ghist_repair_mode="sometimes")

    def test_negative_repair_bubbles_rejected(self):
        with pytest.raises(ValueError):
            ComposerConfig(ghist_repair_bubbles=-1)

    def test_negative_corruption_window_rejected(self):
        with pytest.raises(ValueError):
            ComposerConfig(ghist_corruption_window=-1)

    def test_zero_valued_knobs_accepted(self):
        config = ComposerConfig(ghist_repair_bubbles=0, ghist_corruption_window=0)
        assert config.ghist_repair_bubbles == 0
        assert config.ghist_corruption_window == 0


class TestSerializedFetch:
    def test_packet_cut_at_first_cfi(self):
        pred = mk(serialize_cfi=True)
        result = pred.predict(0, [PLAIN, BR, PLAIN, PLAIN])
        assert result.cut == 1
        assert result.fetched_len == 2
        if not result.final.slots[1].taken:
            assert result.next_fetch_pc == 2

    def test_plain_packet_not_cut(self):
        pred = mk(serialize_cfi=True)
        result = pred.predict(0, [PLAIN] * 4)
        assert result.cut is None
        assert result.fetched_len == 4


class TestSquash:
    def test_squash_after_restores_ghist(self):
        pred = mk()
        a = pred.predict(0, packet(BR))
        ghist_after_a = pred._global.read()
        pred.predict(4, packet(BR))
        pred.predict(8, packet(BR))
        pred.squash_after(a.ftq_id)
        assert pred._global.read() == ghist_after_a
        assert len(pred.history_file) == 1

    def test_squash_nothing_is_noop(self):
        pred = mk()
        a = pred.predict(0, [PLAIN] * 4)
        assert pred.squash_after(a.ftq_id) == 0


class TestStorageReports:
    def test_meta_report_present(self):
        reports = presets.tage_l().storage_reports()
        assert "meta" in reports
        assert reports["meta"].total_bits > 0

    def test_local_history_only_when_used(self):
        tourney = presets.tourney().storage_reports()
        b2 = presets.b2().storage_reports()
        assert "lhist_table" in tourney["meta"].breakdown
        assert "lhist_table" not in b2["meta"].breakdown

    def test_table1_direction_storage(self):
        """Table I: ~6.8 / 6.5 / 28 KB for Tournament / B2 / TAGE-L."""
        tourney = presets.tourney().direction_storage_kib()
        b2 = presets.b2().direction_storage_kib()
        tage_l = presets.tage_l().direction_storage_kib()
        assert 4.5 <= tourney <= 9.0
        assert 3.5 <= b2 <= 8.5
        assert 20.0 <= tage_l <= 34.0
        assert tage_l > 3 * b2  # the paper's big/small relation

    def test_reset_restores_power_on(self):
        pred = mk()
        result = pred.predict(0, packet(BR))
        pred.commit_packet(result.ftq_id)
        pred.reset()
        assert pred.stats.predictions == 0
        assert len(pred.history_file) == 0
        assert pred._global.read() == 0


class TestDescribe:
    def test_preset_topologies(self):
        assert presets.tage_l().describe() == "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
        assert presets.b2().describe() == "GTAG3 > BTB2 > BIM2"
        # Arbitration children render with explicit grouping parentheses.
        assert presets.tourney().describe() == "TOURNEY3 > [(GBIM2 > BTB2), LBIM2]"
