"""Tests for the tooling layer: site profiler, artifacts, RTL skeletons,
and the instruction-cache model."""

import pytest

from repro import presets
from repro.eval import (
    compare_results,
    coverage,
    format_profile,
    load_results,
    run_suite,
    save_results,
    top_offenders,
)
from repro.frontend import Core, CoreConfig
from repro.frontend.caches import InstructionCacheModel
from repro.frontend.config import ICacheConfig
from repro.isa import ProgramBuilder
from repro.rtl import generate_verilog_skeleton
from repro.workloads import build_specint


def hard_branch_program(n=120):
    """One easy loop branch + one LCG-driven hard branch."""
    b = ProgramBuilder("prof")
    b.li(1, 0)
    b.li(2, n)
    b.li(7, 4242)
    b.li(8, 6364136223846793005)
    b.li(9, 35)
    b.label("top")
    b.mul(7, 7, 8)
    b.addi(7, 7, 1)
    b.shr(3, 7, 9)
    b.andi(3, 3, 1)
    b.beq(3, 0, "skip")     # hard branch (pc varies per build; find below)
    b.addi(4, 4, 1)
    b.label("skip")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")      # easy branch
    b.halt()
    return b.build()


class TestProfiler:
    @pytest.fixture(scope="class")
    def run(self):
        program = hard_branch_program()
        core = Core(program, presets.build("tage_l"), CoreConfig())
        stats = core.run()
        return program, stats

    def test_top_offender_is_the_hard_branch(self, run):
        program, stats = run
        offenders = top_offenders(stats, program, limit=3)
        assert offenders
        worst = offenders[0]
        assert "beq" in worst.instruction
        assert worst.mispredicts > 20
        assert 0 < worst.mispredict_rate <= 1

    def test_coverage_concentrated(self, run):
        _, stats = run
        assert coverage(stats, top_n=1) > 0.8  # one branch dominates

    def test_format_profile_renders(self, run):
        program, stats = run
        text = format_profile(stats, program)
        assert "coverage" in text and "beq" in text

    def test_execution_counts_tracked(self, run):
        _, stats = run
        assert sum(stats.executions_by_pc.values()) == stats.committed_branches

    def test_empty_profile(self):
        from repro.frontend.core import CoreStats

        assert format_profile(CoreStats()) == "(no mispredicts recorded)"


class TestArtifacts:
    @pytest.fixture(scope="class")
    def matrix(self):
        program = build_specint("xz", scale=0.1)
        return run_suite(["b2"], {"xz": program})

    def test_save_load_roundtrip(self, matrix, tmp_path):
        path = tmp_path / "results.json"
        save_results(matrix, path)
        loaded = load_results(path)
        original = matrix["b2"]["xz"]
        restored = loaded["b2"]["xz"]
        assert restored.ipc == pytest.approx(original.ipc)
        assert restored.branch_mispredicts == original.branch_mispredicts
        assert restored.stats is None

    def test_compare_detects_ipc_regression(self, matrix, tmp_path):
        path = tmp_path / "r.json"
        save_results(matrix, path)
        before = load_results(path)
        after = load_results(path)
        after["b2"]["xz"].ipc *= 0.8  # simulate a 20% IPC loss
        regressions = compare_results(before, after)
        assert any(r.metric == "ipc" for r in regressions)
        assert regressions[0].relative_change < 0

    def test_compare_clean_runs_empty(self, matrix, tmp_path):
        path = tmp_path / "r.json"
        save_results(matrix, path)
        before = load_results(path)
        after = load_results(path)
        assert compare_results(before, after) == []

    def test_compare_detects_mpki_regression(self, matrix, tmp_path):
        path = tmp_path / "r.json"
        save_results(matrix, path)
        before = load_results(path)
        after = load_results(path)
        after["b2"]["xz"].mpki = before["b2"]["xz"].mpki * 2 + 1
        regressions = compare_results(before, after)
        assert any(r.metric == "mpki" for r in regressions)


class TestVerilogSkeleton:
    def test_contains_every_component_module(self):
        text = generate_verilog_skeleton(presets.tage_l())
        for name in ("ubtb", "bim", "btb", "tage", "loop"):
            assert f"module {name}_unit" in text
        assert "module cobra_predictor_top" in text

    def test_event_ports_present(self):
        text = generate_verilog_skeleton(presets.b2())
        for port in ("fire_valid", "mispredict_valid", "repair_valid",
                     "update_valid"):
            assert port in text

    def test_meta_width_matches_declaration(self):
        predictor = presets.b2()
        text = generate_verilog_skeleton(predictor)
        gtag = next(c for c in predictor.components if c.name == "gtag")
        assert f"[{gtag.meta_bits - 1}:0] meta_out" in text

    def test_history_ports_only_where_used(self):
        text = generate_verilog_skeleton(presets.tourney())
        # The lhist port appears in lbim's module, not in gbim's.
        gbim_module = text.split("module gbim_unit")[1].split("endmodule")[0]
        lbim_module = text.split("module lbim_unit")[1].split("endmodule")[0]
        assert "lhist" in lbim_module
        assert "lhist" not in gbim_module
        assert "ghist" in gbim_module

    def test_arbitration_noted(self):
        text = generate_verilog_skeleton(presets.tourney())
        assert "arbitration: tourney selects" in text

    def test_one_module_per_component_and_table_plus_top(self):
        predictor = presets.tage_l()
        text = generate_verilog_skeleton(predictor)
        tables = sum(
            len(c.spec().tables) if c.spec() is not None else 0
            for c in predictor.components
        )
        expected = len(predictor.components) + tables + 1
        assert text.count("endmodule") == expected

    def test_table_modules_instantiated_in_unit(self):
        predictor = presets.b2()
        text = generate_verilog_skeleton(predictor)
        gtag_module = text.split("module gtag_unit")[1].split("endmodule")[0]
        assert "gtag_counters_table u_counters" in gtag_module
        assert "gtag_tags_table u_tags" in gtag_module
        # The table module itself carries the declared closed forms.
        counters = text.split("module gtag_counters_table")[1].split(
            "endmodule"
        )[0]
        assert "reg [7:0] mem [0:511];" in counters
        assert "function [1:0] ctr_next;" in counters


class TestInstructionCache:
    def test_cold_miss_then_hit(self):
        icache = InstructionCacheModel(n_sets=4, n_ways=2, miss_penalty=10)
        assert icache.fetch_penalty(0) == 10
        assert icache.fetch_penalty(0) == 0
        assert icache.stats.misses == 1

    def test_prefetch_hides_sequential_miss(self):
        icache = InstructionCacheModel(n_sets=16, n_ways=2, line_words=8)
        icache.fetch_penalty(0)            # miss + prefetch line 1
        assert icache.fetch_penalty(8) == 0  # next line already present

    def test_no_prefetch_variant(self):
        icache = InstructionCacheModel(
            n_sets=16, n_ways=2, line_words=8, prefetch_next_line=False
        )
        icache.fetch_penalty(0)
        assert icache.fetch_penalty(8) > 0

    def test_core_counts_icache_stalls_on_large_footprint(self):
        # A program whose code footprint exceeds a tiny icache.
        b = ProgramBuilder("big")
        b.li(1, 0)
        b.li(2, 4)
        b.label("top")
        for i in range(200):
            b.addi(3, 3, 1)
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        config = CoreConfig(
            icache=ICacheConfig(enabled=True, n_sets=2, n_ways=1,
                                line_words=8, prefetch_next_line=False)
        )
        core = Core(b.build(), presets.build("b2"), config)
        stats = core.run()
        assert stats.icache_stall_cycles > 0

    def test_ideal_icache_configurable(self):
        config = CoreConfig(icache=ICacheConfig(enabled=False))
        program = build_specint("xz", scale=0.05)
        core = Core(program, presets.build("b2"), config)
        stats = core.run()
        assert stats.icache_stall_cycles == 0
