"""Tests for the declarative spec layer (``repro.spec``) and its analyzer.

Three-sided coverage: every shipped component's spec round-trips against
its implementation (storage, indexing, area) across multiple library
sizings; every SPEC rule fires on a committed violation fixture; and the
spec layer's consumers (engine gate, contract harness dims, fuzzer
sizings, reproducer artifacts) honor what the specs declare.
"""

import dataclasses
import json
import pickle
import random

import pytest

from repro import cli, presets
from repro.analysis import (
    RULES,
    StimulusDims,
    check_library_specs,
    dims_for,
    to_json,
    validate_report,
)
from repro.analysis.diagnostics import REPORT_VERSION, diagnostic
from repro.analysis.lints import lint_paths
from repro.analysis.spec_check import (
    assert_full_coverage,
    check_component_spec,
    spec_coverage,
)
from repro.components.library import standard_library
from repro.kernels.engine import engine_for
from repro.spec import (
    LEGAL_SIZINGS,
    ComponentSpec,
    FieldSpec,
    IndexFn,
    TableSpec,
    clear_waiver,
    register_waiver,
    waiver_for,
)
from repro.synthesis.area import AreaModel, spec_area

from tests.fixtures import bad_specs

#: Three library sizings the round-trip tests sweep: the shipped Table I
#: defaults, a widened configuration, and a minimal one.
SIZINGS = [
    {},
    {
        "fetch_width": 8,
        "bim_sets": 8192,
        "btb_ways": 8,
        "gtag_history_bits": 24,
    },
    {
        "fetch_width": 2,
        "bim_sets": 1024,
        "gbim_sets": 1024,
        "lbim_sets": 128,
        "btb_sets": 128,
        "btb_ways": 1,
        "ubtb_entries": 16,
        "gtag_sets": 128,
        "gtag_history_bits": 8,
        "tourney_sets": 64,
        "loop_entries": 64,
        "perceptron_entries": 64,
    },
]

BASES = sorted(standard_library().known())


def codes(diags):
    return [d.code for d in diags]


def build(base, sizing_index=0, latency=2):
    library = standard_library(**SIZINGS[sizing_index])
    return library.factory(base)(base.lower(), latency)


# ----------------------------------------------------------------------
# The spec data model
# ----------------------------------------------------------------------
class TestSpecModel:
    def test_field_and_table_bit_totals(self):
        field = FieldSpec("ctr", 2, 4)
        assert field.total_bits == 8
        table = TableSpec("t", entries=16, fields=(field, FieldSpec("v", 1)))
        assert table.entry_bits == 9
        assert table.total_bits == 144
        assert table.breakdown_keys == ("t",)

    def test_storage_report_splits_breakdown_keys(self):
        spec = ComponentSpec(
            "X",
            tables=(
                TableSpec(
                    "t",
                    entries=4,
                    fields=(FieldSpec("f", 3),),
                    breakdown=("a", "b"),
                ),
            ),
        )
        report = spec.storage_report("x")
        assert report.sram_bits == 12
        assert report.breakdown == {"a": 6, "b": 6}
        assert sum(report.breakdown.values()) == spec.total_bits

    def test_validate_catches_structural_problems(self):
        spec = ComponentSpec(
            "",
            tables=(
                TableSpec(
                    "t",
                    entries=0,
                    fields=(),
                    kind="dram",
                    update="telepathy",
                ),
            ),
            kernel="quantum",
            n_inputs=0,
        )
        problems = spec.validate()
        assert any("name is empty" in p for p in problems)
        assert any("entries and ways" in p for p in problems)
        assert any("dram" in p for p in problems)
        assert any("telepathy" in p for p in problems)
        assert any("quantum" in p for p in problems)
        assert any("n_inputs" in p for p in problems)

    def test_index_fn_gshare_matches_scheme_formula(self):
        from repro._util import fold_history, hash_pc

        fn = IndexFn("gshare", 10, history_bits=16, fetch_width=4)
        pc, ghist = 0x4_F00D, 0xDEAD_BEEF
        expected = hash_pc(pc // 4, 10) ^ fold_history(ghist, 16, 10)
        assert fn.compute(pc, ghist) == expected

    def test_index_fn_makes_no_claim_for_cam_and_custom(self):
        assert IndexFn("none", 0).compute(0x100) is None
        assert IndexFn("custom", 8).compute(0x100) is None

    def test_waiver_registry_round_trip(self):
        with pytest.raises(ValueError):
            register_waiver("X", "SPEC006", "")
        register_waiver("SomeClass", "SPEC006", "because")
        try:
            assert waiver_for(("someclass",), "spec006") == "because"
            assert waiver_for(("Other",), "SPEC006") is None
        finally:
            clear_waiver("SomeClass", "SPEC006")
        assert waiver_for(("SomeClass",), "SPEC006") is None


# ----------------------------------------------------------------------
# Shipped library conformance (spec <-> implementation round trip)
# ----------------------------------------------------------------------
class TestLibraryConformance:
    @pytest.mark.parametrize("sizing", range(len(SIZINGS)))
    def test_library_specs_clean(self, sizing):
        library = standard_library(**SIZINGS[sizing])
        assert check_library_specs(library) == []

    @pytest.mark.parametrize("base", BASES)
    @pytest.mark.parametrize("sizing", range(len(SIZINGS)))
    def test_storage_round_trip(self, base, sizing):
        component = build(base, sizing)
        spec = component.spec()
        assert spec is not None
        impl = component.storage()
        assert (spec.sram_bits, spec.flop_bits) == (
            impl.sram_bits,
            impl.flop_bits,
        )
        model = AreaModel()
        assert spec_area(spec, component.name, model) == pytest.approx(
            model.report_area(impl)
        )

    @pytest.mark.parametrize("base", BASES)
    def test_index_fn_matches_observed_indexing(self, base):
        component = build(base)
        spec = component.spec()
        rng = random.Random(f"test-spec-probe:{base}")
        probed = 0
        for table in spec.tables:
            if table.index is None or table.probe is None:
                continue
            if table.index.scheme in ("none", "custom"):
                continue
            for _ in range(8):
                pc = rng.getrandbits(26)
                ghist = rng.getrandbits(64)
                lhist = rng.getrandbits(32)
                phist = rng.getrandbits(32)
                declared = table.index.compute(pc, ghist, lhist, phist)
                observed = table.probe(component, pc, ghist, lhist, phist)
                assert declared == observed, (
                    f"{base}.{table.name}: IndexFn({table.index.scheme}) "
                    f"declared {declared}, implementation indexed {observed}"
                )
                probed += 1
        if base not in ("UBTB", "SC", "PERC"):
            assert probed, f"{base} exposed no probeable table"

    def test_meta_fields_match_declared_meta_bits(self):
        for base in BASES:
            component = build(base)
            spec = component.spec()
            assert spec.meta_bits == component.meta_bits, base

    def test_spec_coverage_is_total(self):
        covered, missing = spec_coverage()
        assert missing == []
        assert sorted(covered) == BASES
        assert_full_coverage()  # the CI gate: must not raise

    def test_history_demand_matches_top006_budget(self):
        for base in BASES:
            component = build(base)
            spec = component.spec()
            assert spec.ghist_bits == component.required_ghist_bits, base
            assert spec.lhist_bits == component.required_lhist_bits, base
            assert spec.phist_bits == component.required_phist_bits, base


# ----------------------------------------------------------------------
# Violation fixtures: every SPEC rule provably fires
# ----------------------------------------------------------------------
class TestSpecViolations:
    @pytest.mark.parametrize("code", sorted(bad_specs.SPEC_VIOLATIONS))
    def test_each_violation_fixture_fires_its_rule(self, code):
        cls = bad_specs.SPEC_VIOLATIONS[code]
        diags = check_component_spec(cls("liar", 2))
        assert code in codes(diags), (
            f"{cls.__name__} should trip {code}, got {codes(diags)}"
        )

    @pytest.mark.parametrize("code", sorted(bad_specs.SPEC_VIOLATIONS))
    def test_violations_are_specific(self, code):
        # A fixture must not spray unrelated diagnostics: each one trips
        # only the rule it was built to violate.
        cls = bad_specs.SPEC_VIOLATIONS[code]
        diags = check_component_spec(cls("liar", 2))
        assert set(codes(diags)) == {code}, (
            f"{cls.__name__}: expected only {code}, got {codes(diags)}"
        )

    def test_declared_kernel_without_implementation_fires(self):
        diags = check_component_spec(bad_specs.KernelWithoutImpl("liar", 2))
        assert set(codes(diags)) == {"SPEC006"}
        assert "columnar_kernel() returned None" in diags[0].message

    def test_unwaived_closed_form_fires_until_waived(self):
        component = bad_specs.UnwaivedClosedForm("liar", 2)
        diags = check_component_spec(component)
        assert set(codes(diags)) == {"SPEC006"}
        assert "waiver" in diags[0].message
        register_waiver("UnwaivedClosedForm", "SPEC006", "fixture waiver")
        try:
            assert check_component_spec(component) == []
        finally:
            clear_waiver("UnwaivedClosedForm", "SPEC006")

    def test_crashing_spec_is_spec008(self):
        diags = check_component_spec(bad_specs.CrashingSpec("liar", 2))
        assert codes(diags) == ["SPEC008"]
        assert "spec() raised" in diags[0].message

    def test_bad_specs_surface_through_check_library_specs(self):
        library = standard_library().with_params(
            "LIAR",
            lambda name, lat: bad_specs.LyingGeometry(name, lat),
        )
        assert "SPEC002" in codes(check_library_specs(library))


# ----------------------------------------------------------------------
# Spec consumers: contract-harness dims and the engine gate
# ----------------------------------------------------------------------
class TestSpecConsumers:
    def test_dims_default_without_spec(self):
        component = bad_specs.MissingSpec("x", 2)
        assert dims_for(component) == StimulusDims()

    def test_dims_widen_to_index_plus_tag_reach(self):
        btb = build("BTB")
        dims = dims_for(btb)
        spec = btb.spec()
        tags = next(t for t in spec.tables if t.name == "tags")
        tag_bits = sum(f.bits for f in tags.fields if f.name == "tag")
        assert dims.pc_bits == max(20, tags.index.index_bits + tag_bits)
        assert dims.fetch_width == btb.fetch_width

    def test_dims_cover_declared_history_demand(self):
        for base in BASES:
            component = build(base)
            dims = dims_for(component)
            spec = component.spec()
            assert dims.ghist_bits >= spec.ghist_bits
            assert dims.lhist_bits >= spec.lhist_bits
            assert dims.phist_bits >= spec.phist_bits

    def test_engine_gate_falls_back_for_specless_component(self):
        # A spec-less third-party component makes no declaration, so the
        # gate falls back to kernel presence (the pre-spec behavior).
        predictor = presets.build("b2")
        assert engine_for(predictor) is not None
        predictor.components[0].spec = lambda: None
        assert engine_for(predictor) is not None

    def test_engine_gate_rejects_spec_declaring_no_kernel(self):
        predictor = presets.build("b2")
        component = predictor.components[0]
        honest = component.spec()
        component.spec = lambda: dataclasses.replace(honest, kernel="none")
        assert engine_for(predictor) is None


# ----------------------------------------------------------------------
# Fuzzer integration: sizings, factories, reproducers, the spec oracle
# ----------------------------------------------------------------------
class TestFuzzIntegration:
    def test_random_library_params_are_spec_legal(self):
        from repro.fuzz.generate import random_library_params

        seen_nonempty = False
        for seed in range(16):
            params = random_library_params(random.Random(seed))
            for name, value in params:
                assert name in LEGAL_SIZINGS
                assert value in LEGAL_SIZINGS[name]
            seen_nonempty = seen_nonempty or bool(params)
            again = random_library_params(random.Random(seed))
            assert again == params  # pure function of the stream
        assert seen_nonempty

    def test_topology_factory_applies_library_params(self):
        from repro.fuzz.generate import TopologyFactory

        factory = TopologyFactory(
            "GTAG3 > BTB2 > BIM2", (("bim_sets", 1024),)
        )
        predictor = factory()
        assert any(
            getattr(c, "n_sets", None) == 1024 for c in predictor.components
        )
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory

    def test_spec_oracle_clean_on_sized_topology(self, tmp_path):
        from repro.fuzz.generate import TopologyFactory, random_program_spec
        from repro.fuzz.oracles import FuzzCase, run_oracle

        case = FuzzCase(
            case_id=0,
            seed=0,
            label="sized",
            predictor_spec=TopologyFactory(
                "GTAG3 > BTB2 > BIM2", (("bim_sets", 2048), ("btb_ways", 2))
            ),
            topology="GTAG3 > BTB2 > BIM2",
            program_spec=random_program_spec(random.Random(0)),
        )
        assert run_oracle("spec", case, tmp_path) == []

    def test_spec_oracle_fires_on_lying_component(self, tmp_path):
        from repro.fuzz.generate import random_program_spec
        from repro.fuzz.oracles import FuzzCase, run_oracle

        def lying_predictor():
            from repro.core.composer import compose

            library = standard_library().with_params(
                "LIAR",
                lambda name, lat: bad_specs.LyingGeometry(name, lat),
            )
            return compose("LIAR2 > BTB2 > BIM2", library=library)

        case = FuzzCase(
            case_id=0,
            seed=0,
            label="liar",
            predictor_spec=lying_predictor,
            topology="LIAR2 > BTB2 > BIM2",
            program_spec=random_program_spec(random.Random(0)),
        )
        mismatches = run_oracle("spec", case, tmp_path)
        assert mismatches
        assert mismatches[0].oracle == "spec"
        assert any("SPEC002" in str(m.actual) for m in mismatches)

    def test_reproducer_round_trips_library_params(self, tmp_path):
        from repro.fuzz.generate import TopologyFactory, random_program_spec
        from repro.fuzz.oracles import FuzzCase
        from repro.fuzz.reproducer import load_reproducer, save_reproducer

        params = (("bim_sets", 1024), ("gtag_history_bits", 24))
        case = FuzzCase(
            case_id=7,
            seed=3,
            label="sized",
            predictor_spec=TopologyFactory("GTAG3 > BTB2 > BIM2", params),
            topology="GTAG3 > BTB2 > BIM2",
            program_spec=random_program_spec(random.Random(3)),
        )
        path = save_reproducer(tmp_path / "case.npz", case, "spec", [])
        loaded = load_reproducer(path)
        assert loaded.case.predictor_spec.library_params == params
        rebuilt = loaded.case.build_predictor()
        assert any(
            getattr(c, "n_sets", None) == 1024 for c in rebuilt.components
        )

    def test_spec_oracle_registered_in_default_battery(self):
        from repro.fuzz.oracles import DEFAULT_ORACLES, ORACLES

        assert "spec" in ORACLES
        assert "spec" in DEFAULT_ORACLES


# ----------------------------------------------------------------------
# Diagnostics schema + CLI surface
# ----------------------------------------------------------------------
class TestSchemaAndCli:
    def test_report_version_bumped_for_spec_family(self):
        assert REPORT_VERSION == 2
        assert {code for code in RULES if code.startswith("SPEC")} == {
            f"SPEC{n:03d}" for n in range(1, 9)
        }

    def test_every_registered_rule_code_round_trips_the_schema(self):
        diags = [diagnostic(code, "message", "subject") for code in sorted(RULES)]
        document = json.loads(to_json(diags))
        assert document["version"] == REPORT_VERSION
        assert validate_report(document) == []
        rendered = {d["code"] for d in document["diagnostics"]}
        assert rendered == set(RULES)

    def test_check_spec_flag_clean_on_shipped_library(self, capsys):
        assert cli.main(["check", "--spec", "--strict"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_check_spec_json_is_schema_valid(self, capsys):
        assert cli.main(["check", "--spec", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert validate_report(document) == []

    def test_unknown_ignore_code_is_usage_error(self, capsys):
        rc = cli.main(
            ["check", "--topology", "BTB2 > BIM2", "--ignore", "NOPE999"]
        )
        assert rc == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_known_ignore_codes_still_accepted(self):
        rc = cli.main(
            ["check", "--topology", "TOURNEY2 > [GBIM3, LBIM2]",
             "--ignore", "TOP002", "TOP005"]
        )
        assert rc == 0

    def test_noqa_with_unknown_code_warns_rpr005(self, tmp_path):
        source = tmp_path / "snippet.py"
        source.write_text(
            "x = 1  # repro: noqa[RPR999]\ny = 2  # repro: noqa[RPR001]\n"
        )
        diags = lint_paths([str(source)])
        assert codes(diags) == ["RPR005"]
        assert diags[0].severity == "warn"
        assert "RPR999" in diags[0].message
