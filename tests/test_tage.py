"""Tests for the TAGE sub-component."""

import pytest

from repro.components.tage import (
    TAGE,
    TageTableConfig,
    default_tables,
    geometric_history_lengths,
)
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.prediction import PredictionVector


def lookup(tage, pc=0, ghist=0, width=4, base_taken=False):
    base = PredictionVector.fallthrough(pc, width)
    for slot in base.slots:
        slot.hit = True
        slot.taken = base_taken
    return tage.lookup(PredictRequest(pc, width, ghist), [base])


def commit(tage, pc, slot, taken, meta, ghist=0, mispredicted=False, width=4):
    br_mask = tuple(i == slot for i in range(width))
    taken_mask = tuple(taken if i == slot else False for i in range(width))
    tage.on_update(
        UpdateBundle(
            fetch_pc=pc,
            width=width,
            ghist=ghist,
            meta=meta,
            br_mask=br_mask,
            taken_mask=taken_mask,
            cfi_idx=slot if taken else None,
            cfi_taken=taken,
            cfi_is_br=True,
            mispredicted=mispredicted,
            mispredict_idx=slot if mispredicted else None,
        )
    )


def small_tage(n_tables=4):
    tables = [
        TageTableConfig(n_sets=64, history_bits=h, tag_bits=8)
        for h in geometric_history_lengths(n_tables, 4, 24)
    ]
    return TAGE("tage", tables=tables)


class TestGeometry:
    def test_geometric_lengths_monotonic(self):
        lengths = geometric_history_lengths(7, 4, 64)
        assert lengths[0] == 4 and lengths[-1] == 64
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single_table(self):
        assert geometric_history_lengths(1, 5, 64) == [5]

    def test_default_tables(self):
        tables = default_tables()
        assert len(tables) == 7
        assert tables[-1].history_bits == 64

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            TAGE("t", tables=[TageTableConfig(100, 8, 8)])


class TestPredictAllocate:
    def test_cold_tage_passes_through(self):
        tage = small_tage()
        out, meta = lookup(tage, base_taken=True)
        assert out.slots[0].taken  # base prediction untouched
        fields = tage._codec.unpack(meta)
        assert fields["provider_valid"] == 0

    def test_allocates_on_mispredict(self):
        tage = small_tage()
        _, meta = lookup(tage, pc=0, ghist=0b1011)
        commit(tage, 0, 0, True, meta, ghist=0b1011, mispredicted=True)
        _, meta2 = lookup(tage, pc=0, ghist=0b1011)
        fields = tage._codec.unpack(meta2)
        assert fields["provider_valid"] == 1

    def test_no_allocation_without_mispredict(self):
        tage = small_tage()
        _, meta = lookup(tage, pc=0, ghist=0b1011)
        commit(tage, 0, 0, True, meta, ghist=0b1011, mispredicted=False)
        _, meta2 = lookup(tage, pc=0, ghist=0b1011)
        assert tage._codec.unpack(meta2)["provider_valid"] == 0

    def test_provider_prediction_follows_training(self):
        tage = small_tage()
        ghist = 0b110010
        _, meta = lookup(tage, ghist=ghist)
        commit(tage, 0, 0, True, meta, ghist=ghist, mispredicted=True)
        for _ in range(3):
            _, meta = lookup(tage, ghist=ghist)
            commit(tage, 0, 0, True, meta, ghist=ghist)
        out, _ = lookup(tage, ghist=ghist)
        assert out.slots[0].taken

    def test_different_history_different_entry(self):
        tage = small_tage()
        for ghist, taken in ((0b1111, True), (0b0000, False)):
            _, meta = lookup(tage, ghist=ghist)
            commit(tage, 0, 0, taken, meta, ghist=ghist, mispredicted=True)
            for _ in range(3):
                _, meta = lookup(tage, ghist=ghist)
                commit(tage, 0, 0, taken, meta, ghist=ghist)
        out_t, _ = lookup(tage, ghist=0b1111)
        out_n, _ = lookup(tage, ghist=0b0000)
        assert out_t.slots[0].taken
        assert not out_n.slots[0].taken

    def test_pattern_learned_via_history(self):
        """The canonical check: a periodic pattern becomes ~perfect."""
        tage = small_tage()
        pattern = [True, True, False, True, False, False, True, False]
        ghist = 0
        misses = 0
        for i in range(1200):
            taken = pattern[i % len(pattern)]
            out, meta = lookup(tage, ghist=ghist)
            predicted = out.slots[0].taken
            wrong = predicted != taken
            if i >= 600:
                misses += wrong
            commit(tage, 0, 0, taken, meta, ghist=ghist, mispredicted=wrong)
            ghist = ((ghist << 1) | int(taken)) & ((1 << 64) - 1)
        assert misses <= 5

    def test_u_decay_runs(self):
        tage = small_tage()
        tage.u_decay_period = 8
        for i in range(20):
            _, meta = lookup(tage, ghist=i)
            commit(tage, 0, 0, True, meta, ghist=i, mispredicted=True)
        # just exercising the decay path; all u values remain in range
        for table in range(len(tage.tables)):
            assert (tage._useful[table] <= 3).all()


class TestMeta:
    def test_meta_fits_declared_width(self):
        tage = small_tage()
        _, meta = lookup(tage)
        assert meta <= (1 << tage.meta_bits) - 1

    def test_reset_clears_tables(self):
        tage = small_tage()
        _, meta = lookup(tage, ghist=3)
        commit(tage, 0, 0, True, meta, ghist=3, mispredicted=True)
        tage.reset()
        _, meta2 = lookup(tage, ghist=3)
        assert tage._codec.unpack(meta2)["provider_valid"] == 0

    def test_storage_scales_with_tables(self):
        small = small_tage(n_tables=2).storage().total_bits
        large = small_tage(n_tables=6).storage().total_bits
        assert large > small

    def test_uses_global_history_declared(self):
        assert small_tage().uses_global_history
