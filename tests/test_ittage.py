"""Tests for the ITTAGE indirect-target predictor."""

import pytest

from repro.components.ittage import ITTAGE
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.prediction import PredictionVector


def lookup(it, pc=0, ghist=0, width=4):
    base = PredictionVector.fallthrough(pc, width)
    return it.lookup(PredictRequest(pc, width, ghist), [base])


def jalr_commit(it, pc, slot, target, meta, ghist=0, mispredicted=False, width=4):
    it.on_update(
        UpdateBundle(
            fetch_pc=pc, width=width, ghist=ghist, meta=meta,
            br_mask=(False,) * width, taken_mask=(False,) * width,
            cfi_idx=slot, cfi_taken=True, cfi_target=target,
            cfi_is_jalr=True, mispredicted=mispredicted,
            mispredict_idx=slot if mispredicted else None,
        )
    )


@pytest.fixture()
def it():
    return ITTAGE("ittage", n_tables=3, n_sets=64)


class TestITTAGE:
    def test_cold_passes_through(self, it):
        out, meta = lookup(it)
        assert not any(s.hit for s in out.slots)
        assert it._codec.unpack(meta)["provider_valid"] == 0

    def test_allocates_on_target_mispredict(self, it):
        _, meta = lookup(it, ghist=0b1010)
        jalr_commit(it, 0, 1, 40, meta, ghist=0b1010, mispredicted=True)
        out, meta2 = lookup(it, ghist=0b1010)
        assert it._codec.unpack(meta2)["provider_valid"] == 1
        assert out.slots[1].is_jump
        assert out.slots[1].target == 40

    def test_history_selects_target(self, it):
        """The switch use case: same jump site, different histories map to
        different targets."""
        for ghist, target in ((0b1111, 40), (0b0001, 80)):
            _, meta = lookup(it, ghist=ghist)
            jalr_commit(it, 0, 0, target, meta, ghist=ghist, mispredicted=True)
            for _ in range(2):
                _, meta = lookup(it, ghist=ghist)
                jalr_commit(it, 0, 0, target, meta, ghist=ghist)
        out_a, _ = lookup(it, ghist=0b1111)
        out_b, _ = lookup(it, ghist=0b0001)
        assert out_a.slots[0].target == 40
        assert out_b.slots[0].target == 80

    def test_confidence_replacement(self, it):
        ghist = 0b0110
        _, meta = lookup(it, ghist=ghist)
        jalr_commit(it, 0, 0, 40, meta, ghist=ghist, mispredicted=True)
        # Wrong target twice: confidence decays to 0 then the entry
        # retargets.
        for _ in range(2):
            _, meta = lookup(it, ghist=ghist)
            jalr_commit(it, 0, 0, 99, meta, ghist=ghist)
        # After retarget the entry needs to rebuild confidence (two
        # confirmations for the 2-bit counter) before predicting again.
        for _ in range(2):
            _, meta = lookup(it, ghist=ghist)
            jalr_commit(it, 0, 0, 99, meta, ghist=ghist)
        out, _ = lookup(it, ghist=ghist)
        assert out.slots[0].target == 99

    def test_non_jalr_updates_ignored(self, it):
        _, meta = lookup(it)
        it.on_update(
            UpdateBundle(
                fetch_pc=0, width=4, meta=meta,
                br_mask=(True, False, False, False),
                taken_mask=(True, False, False, False),
                cfi_idx=0, cfi_taken=True, cfi_target=40, cfi_is_br=True,
                mispredicted=True, mispredict_idx=0,
            )
        )
        _, meta2 = lookup(it)
        assert it._codec.unpack(meta2)["provider_valid"] == 0

    def test_provides_targets_flag(self, it):
        assert it.provides_targets

    def test_storage_and_reset(self, it):
        assert it.storage().sram_bits > 0
        assert it.storage().access_bits > 0
        _, meta = lookup(it, ghist=1)
        jalr_commit(it, 0, 0, 12, meta, ghist=1, mispredicted=True)
        it.reset()
        out, _ = lookup(it, ghist=1)
        assert not any(s.hit for s in out.slots)


class TestITTAGEComposed:
    def test_reduces_indirect_mispredicts_end_to_end(self):
        from repro.components.library import standard_library
        from repro.core import ComposerConfig, compose
        from repro.eval import run_workload
        from repro.workloads import build_specint

        program = build_specint("perlbench", scale=0.25)
        base = compose(
            "TAGE3 > BTB2 > BIM2",
            standard_library(global_history_bits=64),
            ComposerConfig(global_history_bits=64),
        )
        with_it = compose(
            "ITTAGE3 > TAGE3 > BTB2 > BIM2",
            standard_library(global_history_bits=64),
            ComposerConfig(global_history_bits=64),
        )
        r_base = run_workload(base, program, system_name="base")
        r_it = run_workload(with_it, program, system_name="ittage")
        assert r_it.target_mispredicts < r_base.target_mispredicts
        assert r_it.ipc >= r_base.ipc
