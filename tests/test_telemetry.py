"""Telemetry subsystem: counters, attribution, tracing, round-trips."""

import dataclasses
import json

import pytest

from repro import presets
from repro.core.composer import ComposedPredictor, ComposerConfig
from repro.core.events import EVENT_NAMES
from repro.core.topology import Leaf
from repro.components.bimodal import HBIM
from repro.eval.cache import ResultCache, job_fingerprint, fingerprint_key
from repro.eval.metrics import RunResult
from repro.eval.runner import run_suite, run_workload
from repro.frontend.config import CoreConfig
from repro.frontend.core import Core
from repro.telemetry import (
    EventTrace,
    SUMMARY_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    TelemetryCollector,
    format_component_table,
    format_summary,
)
from repro.telemetry.collector import UNATTRIBUTED
from repro.telemetry.trace import read_trace
from repro.workloads.micro import build_micro

MAX_INSTRUCTIONS = 3000


def _run(preset="tourney", workload="dispatch", **config_kwargs):
    program = build_micro(workload, scale=0.2)
    predictor = presets.build(preset)
    core = Core(program, predictor, CoreConfig(**config_kwargs))
    stats = core.run(max_instructions=MAX_INSTRUCTIONS)
    return core, stats


@pytest.fixture(scope="module")
def telemetry_run():
    core, stats = _run(telemetry=True)
    return core, stats


class TestCollectorBasics:
    def test_off_by_default(self):
        core, stats = _run()
        assert core.telemetry is None
        assert stats.telemetry is None
        assert core.predictor.telemetry is None

    def test_attached_when_configured(self, telemetry_run):
        core, stats = telemetry_run
        assert isinstance(core.telemetry, TelemetryCollector)
        assert core.predictor.telemetry is core.telemetry
        assert stats.telemetry is not None
        assert stats.telemetry["schema"] == SUMMARY_SCHEMA_VERSION

    def test_all_components_in_summary(self, telemetry_run):
        core, stats = telemetry_run
        names = {c.name for c in core.predictor.components}
        assert set(stats.telemetry["components"]) == names

    def test_lookups_count_packets(self, telemetry_run):
        _, stats = telemetry_run
        payload = stats.telemetry
        assert payload["packets"] == stats.fetch_packets
        for counters in payload["components"].values():
            assert counters["lookups"] == payload["packets"]

    def test_occupancy_bounded_by_capacity(self, telemetry_run):
        core, stats = telemetry_run
        occupancy = stats.telemetry["occupancy"]
        assert 0 <= occupancy["max"] <= core.predictor.history_file.capacity
        assert occupancy["samples"] == stats.telemetry["packets"]

    def test_detach(self, telemetry_run):
        core, _ = telemetry_run
        predictor = presets.build("b2")
        collector = TelemetryCollector()
        predictor.attach_telemetry(collector)
        assert predictor.telemetry is collector
        predictor.detach_telemetry()
        assert predictor.telemetry is None


class TestAttributionInvariants:
    """Attributed counts must tie out exactly against CoreStats."""

    def test_direction_wrong_total_matches_mispredicts(self, telemetry_run):
        _, stats = telemetry_run
        payload = stats.telemetry
        total = payload["unattributed"]["direction_wrong"] + sum(
            c["direction_wrong"] for c in payload["components"].values()
        )
        assert total == stats.branch_mispredicts

    def test_target_wrong_total_matches_mispredicts(self, telemetry_run):
        _, stats = telemetry_run
        payload = stats.telemetry
        total = payload["unattributed"]["target_wrong"] + sum(
            c["target_wrong"] for c in payload["components"].values()
        )
        assert total == stats.target_mispredicts

    def test_site_wrongs_match_mispredicts_by_pc(self, telemetry_run):
        _, stats = telemetry_run
        by_pc = {}
        for pc_text, by_provider in stats.telemetry["sites"].items():
            wrong = sum(cell[1] for cell in by_provider.values())
            if wrong:
                by_pc[int(pc_text)] = wrong
        assert by_pc == stats.mispredicts_by_pc

    def test_direction_right_total_matches_commits(self, telemetry_run):
        """Every committed, correctly-predicted branch is credited once."""
        _, stats = telemetry_run
        payload = stats.telemetry
        rights = payload["unattributed"]["direction_right"] + sum(
            c["direction_right"] for c in payload["components"].values()
        )
        # direction_right counts per committed packet dequeue; wrong-path
        # packets never commit, so this ties to committed branches minus
        # the mispredicted ones (those are charged wrong at resolve time).
        assert rights == stats.committed_branches - stats.branch_mispredicts

    def test_single_leaf_gets_all_attribution(self):
        """With one always-hitting component, nothing else can provide."""
        program = build_micro("biased", scale=0.2)
        bim = HBIM("bim", latency=2, n_sets=256, fetch_width=4)
        predictor = ComposedPredictor(Leaf(bim), ComposerConfig(fetch_width=4))
        core = Core(program, predictor, CoreConfig(telemetry=True))
        stats = core.run(max_instructions=MAX_INSTRUCTIONS)
        payload = stats.telemetry
        assert set(payload["components"]) == {"bim"}
        assert payload["unattributed"]["direction_wrong"] == 0
        assert (
            payload["components"]["bim"]["direction_wrong"]
            == stats.branch_mispredicts
        )
        for by_provider in payload["sites"].values():
            assert set(by_provider) == {"bim"}


class TestZeroPerturbation:
    def test_stats_identical_with_and_without_telemetry(self):
        _, plain = _run()
        _, telem = _run(telemetry=True)
        d_plain = dataclasses.asdict(plain)
        d_telem = dataclasses.asdict(telem)
        assert d_plain.pop("telemetry") is None
        assert d_telem.pop("telemetry") is not None
        assert d_plain == d_telem


class TestSummaryPayload:
    def test_json_canonical(self, telemetry_run):
        _, stats = telemetry_run
        payload = stats.telemetry
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload

    def test_report_rendering(self, telemetry_run):
        _, stats = telemetry_run
        table = format_component_table(stats.telemetry)
        summary = format_summary(stats.telemetry)
        for name in stats.telemetry["components"]:
            assert name in table
        assert "packets predicted" in summary


class TestEventTrace:
    def test_bounding(self):
        trace = EventTrace(max_events=3)
        for i in range(10):
            trace.emit("predict", pc=i)
        assert len(trace) == 3
        assert trace.dropped == 7
        assert trace.truncated

    def test_dump_and_read_round_trip(self, tmp_path):
        trace = EventTrace(max_events=100)
        trace.emit("predict", pc=1)
        trace.emit("update", pc=1)
        target = tmp_path / "trace.jsonl"
        trace.dump(target)
        records = read_trace(target)
        assert records[0]["schema"] == TRACE_SCHEMA_VERSION
        assert [r["e"] for r in records[1:]] == ["predict", "update"]

    def test_read_rejects_wrong_schema(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text(
            json.dumps({"schema": 999, "kind": "repro-telemetry-trace"}) + "\n"
        )
        with pytest.raises(ValueError):
            read_trace(target)

    def test_read_rejects_non_trace(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text("{}\n")
        with pytest.raises(ValueError):
            read_trace(target)

    def test_streaming_run_produces_valid_trace(self, tmp_path):
        target = tmp_path / "run.jsonl"
        program = build_micro("biased", scale=0.2)
        result = run_workload(
            "b2",
            program,
            max_instructions=MAX_INSTRUCTIONS,
            trace_path=target,
        )
        assert result.telemetry is not None
        records = read_trace(target)
        kinds = {r["e"] for r in records[1:]}
        assert kinds <= set(EVENT_NAMES)
        assert "predict" in kinds and "update" in kinds

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            EventTrace(max_events=0)


class TestRoundTrips:
    def test_cache_round_trip_is_exact(self, tmp_path, telemetry_run):
        _, stats = telemetry_run
        result = RunResult.from_stats("tourney", "dispatch", stats)
        cache = ResultCache(tmp_path / "cache")
        key = fingerprint_key(
            job_fingerprint(
                presets.build("tourney"),
                build_micro("dispatch", scale=0.2),
                CoreConfig(telemetry=True),
                MAX_INSTRUCTIONS,
            )
        )
        cache.put(key, result)
        loaded = cache.get(key)
        assert loaded.telemetry == result.telemetry
        assert loaded == result

    def test_telemetry_flag_changes_fingerprint(self):
        predictor = presets.build("b2")
        program = build_micro("biased", scale=0.2)
        plain = fingerprint_key(
            job_fingerprint(predictor, program, CoreConfig(), 1000)
        )
        telem = fingerprint_key(
            job_fingerprint(predictor, program, CoreConfig(telemetry=True), 1000)
        )
        assert plain != telem

    def test_run_suite_parallel_carries_telemetry(self):
        programs = {"biased": build_micro("biased", scale=0.2)}
        serial = run_suite(
            ["b2"], programs, max_instructions=MAX_INSTRUCTIONS, telemetry=True
        )
        parallel = run_suite(
            ["b2"],
            programs,
            max_instructions=MAX_INSTRUCTIONS,
            telemetry=True,
            jobs=2,
        )
        payload = serial["b2"]["biased"].telemetry
        assert payload is not None
        assert parallel["b2"]["biased"].telemetry == payload

    def test_unattributed_key_reserved(self, telemetry_run):
        _, stats = telemetry_run
        assert UNATTRIBUTED not in stats.telemetry["components"]
