"""The deterministic result cache: keys, round-trips, and fault tolerance."""

import json

import pytest

from repro import presets
from repro.eval.cache import (
    CODE_VERSION,
    ResultCache,
    fingerprint_key,
    job_fingerprint,
    program_digest,
    result_from_payload,
    result_to_payload,
    trace_file_digest,
)
from repro.eval.runner import run_suite, run_workload
from repro.frontend.config import CoreConfig
from repro.workloads.micro import build_micro
from repro.workloads.traces import capture_trace


@pytest.fixture(scope="module")
def program():
    return build_micro("biased", scale=0.2)


def _fingerprint(program, **overrides):
    kwargs = dict(
        predictor=presets.build("b2"),
        program=program,
        core_config=CoreConfig(),
        max_instructions=2000,
        max_cycles=None,
    )
    kwargs.update(overrides)
    return job_fingerprint(**kwargs)


class TestFingerprint:
    def test_key_is_deterministic(self, program):
        a = fingerprint_key(_fingerprint(program))
        b = fingerprint_key(_fingerprint(program))
        assert a == b

    def test_key_changes_with_topology(self, program):
        base = fingerprint_key(_fingerprint(program))
        other = fingerprint_key(
            _fingerprint(program, predictor=presets.build("tourney"))
        )
        assert base != other

    def test_key_changes_with_component_sizing(self, program):
        """Same topology string, different table sizing -> different key."""
        small = presets.tage_l(tage_sets=256)
        large = presets.tage_l(tage_sets=1024)
        assert small.describe() == large.describe()
        assert fingerprint_key(
            _fingerprint(program, predictor=small)
        ) != fingerprint_key(_fingerprint(program, predictor=large))

    def test_key_changes_with_workload_content(self, program):
        """Regenerating at another scale changes the program digest."""
        rescaled = build_micro("biased", scale=0.4)
        assert program_digest(program) != program_digest(rescaled)
        assert fingerprint_key(_fingerprint(program)) != fingerprint_key(
            _fingerprint(rescaled)
        )

    def test_key_changes_with_run_bounds_and_core(self, program):
        base = fingerprint_key(_fingerprint(program))
        assert base != fingerprint_key(
            _fingerprint(program, max_instructions=4000)
        )
        assert base != fingerprint_key(_fingerprint(program, max_cycles=100))
        assert base != fingerprint_key(
            _fingerprint(program, core_config=CoreConfig(rob_entries=64))
        )

    def test_fingerprint_carries_code_version(self, program):
        assert _fingerprint(program)["code_version"] == CODE_VERSION


class TestBackendKeys:
    """The execution backend and trace content are part of the key."""

    def test_each_backend_gets_a_distinct_key(self, program):
        keys = {
            fingerprint_key(_fingerprint(program, backend=backend))
            for backend in ("cycle", "trace", "replay")
        }
        assert len(keys) == 3

    def test_trace_content_changes_the_key(self, program, tmp_path):
        short = tmp_path / "short.npz"
        long = tmp_path / "long.npz"
        capture_trace(program, max_instructions=1000).save(short)
        capture_trace(program, max_instructions=2000).save(long)
        assert trace_file_digest(short) != trace_file_digest(long)
        keys = {
            fingerprint_key(
                _fingerprint(
                    None,
                    backend="replay",
                    trace_digest=trace_file_digest(path),
                    workload="biased",
                )
            )
            for path in (short, long)
        }
        assert len(keys) == 2

    def test_identical_trace_bytes_share_a_key(self, program, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        for path in (a, b):
            capture_trace(program, max_instructions=1000).save(path)
        assert trace_file_digest(a) == trace_file_digest(b)

    def test_traceless_replay_fingerprint_is_rejected(self):
        with pytest.raises(ValueError, match="program or a trace digest"):
            _fingerprint(None, backend="replay")

    def test_suite_cache_does_not_alias_backends(self, tmp_path):
        """cycle and trace runs of one job land in separate entries."""
        programs = {"biased": build_micro("biased", scale=0.2)}
        cache = ResultCache(tmp_path / "c")
        for backend in ("cycle", "trace"):
            run_suite(
                ["b2"],
                programs,
                max_instructions=2000,
                cache=cache,
                backend=backend,
            )
        assert len(cache) == 2
        assert cache.hits == 0


class TestRoundTrip:
    def test_result_payload_round_trip(self, program):
        result = run_workload("b2", program, max_instructions=2000)
        payload = json.loads(json.dumps(result_to_payload(result)))
        restored = result_from_payload(payload)
        # Full equality including CoreStats (its int-keyed per-PC dicts
        # must survive the JSON string-key round trip).
        assert restored == result
        assert restored.stats == result.stats
        assert all(
            isinstance(k, int) for k in restored.stats.mispredicts_by_pc
        )

    def test_cache_hit_returns_identical_result(self, tmp_path, program):
        cache = ResultCache(tmp_path)
        result = run_workload("b2", program, max_instructions=2000)
        cache.put("k", result)
        assert cache.get("k") == result
        assert cache.hits == 1

    def test_miss_and_hit_counters(self, tmp_path, program):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("k", run_workload("b2", program, max_instructions=2000))
        cache.get("k")
        assert (cache.hits, cache.misses) == (1, 1)


class TestFaultTolerance:
    def test_corrupt_entry_is_a_miss(self, tmp_path, program):
        cache = ResultCache(tmp_path)
        result = run_workload("b2", program, max_instructions=2000)
        cache.put("k", result)
        cache.path_for("k").write_text("{ not json")
        assert cache.get("k") is None
        # Recompute-and-put recovers the entry.
        cache.put("k", result)
        assert cache.get("k") == result

    def test_truncated_entry_is_a_miss(self, tmp_path, program):
        cache = ResultCache(tmp_path)
        cache.put("k", run_workload("b2", program, max_instructions=2000))
        full = cache.path_for("k").read_text()
        cache.path_for("k").write_text(full[: len(full) // 2])
        assert cache.get("k") is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("k").parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("k").write_text(json.dumps({"result": {"bogus": 1}}))
        assert cache.get("k") is None


class TestSuiteIntegration:
    def test_warm_cache_replays_suite_exactly(self, tmp_path):
        programs = {
            name: build_micro(name, scale=0.2) for name in ("biased", "dispatch")
        }
        cold = run_suite(
            ["b2"], programs, max_instructions=2000, cache=tmp_path / "c"
        )
        warm = run_suite(
            ["b2"], programs, max_instructions=2000, cache=tmp_path / "c"
        )
        uncached = run_suite(["b2"], programs, max_instructions=2000)
        for workload in programs:
            assert warm["b2"][workload] == cold["b2"][workload]
            assert warm["b2"][workload] == uncached["b2"][workload]
        assert len(ResultCache(tmp_path / "c")) == len(programs)

    def test_seed_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        a = build_micro("biased", scale=0.2)
        b = build_micro("biased", scale=0.3)
        run_suite(["b2"], {"biased": a}, max_instructions=2000, cache=cache)
        run_suite(["b2"], {"biased": b}, max_instructions=2000, cache=cache)
        # Distinct program content -> distinct entries, no false sharing.
        assert len(cache) == 2
