"""Tests for the program builder (labels, fixups, data)."""

import pytest

from repro.isa import Opcode, ProgramBuilder
from repro.isa.program import Program


class TestLabels:
    def test_forward_reference(self):
        b = ProgramBuilder("t")
        b.jump("end")
        b.li(1, 1)
        b.label("end")
        b.halt()
        prog = b.build()
        assert prog.instructions[0].target == 2

    def test_backward_reference(self):
        b = ProgramBuilder("t")
        b.label("top")
        b.li(1, 1)
        b.jump("top")
        prog = b.build()
        assert prog.instructions[1].target == 0

    def test_undefined_label_raises(self):
        b = ProgramBuilder("t")
        b.jump("nowhere")
        with pytest.raises(ValueError, match="nowhere"):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder("t")
        b.label("a")
        with pytest.raises(ValueError, match="duplicate"):
            b.label("a")

    def test_numeric_target_passthrough(self):
        b = ProgramBuilder("t")
        b.beq(1, 2, 7)
        prog = b.build()
        assert prog.instructions[0].target == 7

    def test_pc_property(self):
        b = ProgramBuilder("t")
        assert b.pc == 0
        b.li(1, 1)
        assert b.pc == 1


class TestData:
    def test_data_word_and_block(self):
        b = ProgramBuilder("t")
        b.data_word(10, 5)
        b.data_block(20, [1, 2, 3])
        b.halt()
        prog = b.build()
        assert prog.data[10] == 5
        assert prog.data[21] == 2

    def test_data_label_resolves_to_pc(self):
        b = ProgramBuilder("t")
        b.halt()
        b.label("handler")
        b.nop()
        b.data_label(100, "handler")
        prog = b.build()
        assert prog.data[100] == 1

    def test_data_label_undefined_raises(self):
        b = ProgramBuilder("t")
        b.halt()
        b.data_label(100, "missing")
        with pytest.raises(ValueError, match="missing"):
            b.build()


class TestProgram:
    def test_fetch_in_and_out_of_range(self):
        prog = Program([], name="empty")
        assert prog.fetch(0) is None
        b = ProgramBuilder("t")
        b.nop()
        prog = b.build()
        assert prog.fetch(0).op is Opcode.NOP
        assert prog.fetch(1) is None
        assert prog.fetch(-1) is None

    def test_static_branch_count(self):
        b = ProgramBuilder("t")
        b.beq(1, 2, 0)
        b.jump(0)
        b.nop()
        assert b.build().static_branch_count() == 2

    def test_len(self):
        b = ProgramBuilder("t")
        b.nop().nop().halt()
        assert len(b.build()) == 3
