"""Tests for the loop predictor and tournament selector."""

from repro.components.loop import LoopPredictor
from repro.components.tournament import Tourney
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.prediction import PredictionVector


def branch_base(pc=0, width=4, slot=0, taken=False):
    base = PredictionVector.fallthrough(pc, width)
    base.slots[slot].hit = True
    base.slots[slot].is_branch = True
    base.slots[slot].taken = taken
    return base


def loop_commit(loop, pc, slot, taken, meta, mispredicted=False, width=4):
    loop.on_update(
        UpdateBundle(
            fetch_pc=pc, width=width, meta=meta,
            br_mask=tuple(i == slot for i in range(width)),
            taken_mask=tuple(taken if i == slot else False for i in range(width)),
            mispredicted=mispredicted,
            mispredict_idx=slot if mispredicted else None,
        )
    )


def run_loop_iterations(loop, trips, rounds, pc=0):
    """Drive a perfect counted loop: `trips` taken, then one not-taken."""
    wrong_total = 0
    for _ in range(rounds):
        for i in range(trips + 1):
            taken = i < trips
            base = branch_base(pc=pc, taken=True)  # base predicts 'taken'
            out, meta = loop.lookup(PredictRequest(pc, 4), [base])
            predicted = out.slots[0].taken
            wrong = predicted != taken
            wrong_total += wrong
            loop.fire(
                UpdateBundle(
                    fetch_pc=pc, width=4, meta=meta,
                    br_mask=(True, False, False, False),
                    taken_mask=(predicted, False, False, False),
                )
            )
            if wrong:
                loop.on_mispredict(
                    UpdateBundle(
                        fetch_pc=pc, width=4, meta=meta,
                        br_mask=(True, False, False, False),
                        taken_mask=(taken, False, False, False),
                        mispredicted=True, mispredict_idx=0,
                    )
                )
            loop_commit(loop, pc, 0, taken, meta, mispredicted=wrong)
    return wrong_total


class TestLoopPredictor:
    def test_learns_trip_count_and_predicts_exit(self):
        loop = LoopPredictor("loop", n_entries=16)
        # Warm up enough rounds for confidence, then measure one round.
        run_loop_iterations(loop, trips=5, rounds=8)
        wrong = run_loop_iterations(loop, trips=5, rounds=4)
        assert wrong == 0  # exit predicted exactly

    def test_unstable_trips_never_confident(self):
        loop = LoopPredictor("loop", n_entries=16)
        # Alternate trip counts 3 and 6: confidence must not build.
        for round_idx in range(10):
            trips = 3 if round_idx % 2 == 0 else 6
            run_loop_iterations(loop, trips=trips, rounds=1)
        base = branch_base(taken=True)
        out, meta = loop.lookup(PredictRequest(0, 4), [base])
        fields = loop._codec.unpack(meta)
        # Candidate exists but does not override with confidence...
        if fields["cand_valid"]:
            entry = loop._entry_for(0)
            assert entry is None or loop._conf[entry] < loop.CONF_THRESHOLD

    def test_repair_restores_spec_counter(self):
        loop = LoopPredictor("loop", n_entries=16)
        run_loop_iterations(loop, trips=4, rounds=8)
        entry = loop._entry_for(0)
        assert entry is not None
        before = int(loop._spec_iter[entry])
        base = branch_base(taken=True)
        out, meta = loop.lookup(PredictRequest(0, 4), [base])
        loop.fire(
            UpdateBundle(
                fetch_pc=0, width=4, meta=meta,
                br_mask=(True, False, False, False),
                taken_mask=(True, False, False, False),
            )
        )
        assert int(loop._spec_iter[entry]) == before + 1
        loop.on_repair(
            UpdateBundle(fetch_pc=0, width=4, meta=meta,
                         br_mask=(True, False, False, False),
                         taken_mask=(True, False, False, False))
        )
        assert int(loop._spec_iter[entry]) == before

    def test_no_branch_info_no_prediction(self):
        loop = LoopPredictor("loop", n_entries=16)
        base = PredictionVector.fallthrough(0, 4)  # no is_branch hints
        out, meta = loop.lookup(PredictRequest(0, 4), [base])
        assert loop._codec.unpack(meta)["cand_valid"] == 0

    def test_storage_and_reset(self):
        loop = LoopPredictor("loop", n_entries=64)
        assert loop.storage().total_bits > 0
        run_loop_iterations(loop, trips=3, rounds=3)
        loop.reset()
        assert not loop._valid.any()


class TestTourney:
    def _mk_inputs(self, a_taken, b_taken, width=4):
        a = PredictionVector.fallthrough(0, width)
        b = PredictionVector.fallthrough(0, width)
        for slot in a.slots:
            slot.hit = True
            slot.taken = a_taken
            slot.is_branch = True
        for slot in b.slots:
            slot.hit = True
            slot.taken = b_taken
            slot.is_branch = True
        return a, b

    def test_requires_two_inputs(self):
        t = Tourney("t", n_sets=16)
        assert t.n_inputs == 2

    def test_learns_to_prefer_correct_side(self):
        t = Tourney("t", n_sets=16, history_bits=8)
        ghist = 0b1010
        # Input B is always right (taken), A always wrong.
        for _ in range(6):
            a, b = self._mk_inputs(False, True)
            out, meta = t.lookup(PredictRequest(0, 4, ghist), [a, b])
            t.on_update(
                UpdateBundle(
                    fetch_pc=0, width=4, ghist=ghist, meta=meta,
                    br_mask=(True, False, False, False),
                    taken_mask=(True, False, False, False),
                )
            )
        a, b = self._mk_inputs(False, True)
        out, _ = t.lookup(PredictRequest(0, 4, ghist), [a, b])
        assert out.slots[0].taken  # chose B

    def test_no_training_when_sides_agree(self):
        t = Tourney("t", n_sets=16, history_bits=8)
        before = t._table.copy()
        a, b = self._mk_inputs(True, True)
        _, meta = t.lookup(PredictRequest(0, 4, 0), [a, b])
        t.on_update(
            UpdateBundle(
                fetch_pc=0, width=4, ghist=0, meta=meta,
                br_mask=(True, False, False, False),
                taken_mask=(True, False, False, False),
            )
        )
        assert (t._table == before).all()

    def test_meta_tracks_both_sides(self):
        """§III-G3: metadata records both sub-predictions for update."""
        t = Tourney("t", n_sets=16, history_bits=8)
        a, b = self._mk_inputs(True, False)
        _, meta = t.lookup(PredictRequest(0, 4, 0), [a, b])
        fields = t._codec.unpack(meta)
        assert fields["a_taken"][0] == 1
        assert fields["b_taken"][0] == 0

    def test_target_flows_from_either_side(self):
        t = Tourney("t", n_sets=16, history_bits=8)
        a, b = self._mk_inputs(True, False)
        a.slots[0].target = 123
        out, _ = t.lookup(PredictRequest(0, 4, 0), [a, b])
        assert out.slots[0].target == 123

    def test_storage(self):
        assert Tourney("t", n_sets=256).storage().sram_bits == 256 * 4 * 2


class TestLoopPredictorRobustness:
    """Regression tests for the cold-start polarity and drift pathologies."""

    def test_cold_start_allocation_learns_correct_direction(self):
        """Allocation fires on the first *taken* mispredict of a cold base
        predictor; the body direction must still come out right."""
        loop = LoopPredictor("loop", n_entries=16)
        # Simulate: base predicts not-taken, loop instance = 5 taken + exit.
        for _ in range(8):
            for i in range(6):
                taken = i < 5
                base = branch_base(taken=False)  # cold bimodal says NT
                out, meta = loop.lookup(PredictRequest(0, 4), [base])
                predicted = out.slots[0].taken
                wrong = predicted != taken
                loop.fire(UpdateBundle(
                    fetch_pc=0, width=4, meta=meta,
                    br_mask=(True, False, False, False),
                    taken_mask=(predicted, False, False, False)))
                loop_commit(loop, 0, 0, taken, meta, mispredicted=wrong)
        entry = loop._entry_for(0)
        assert entry is not None
        assert bool(loop._direction[entry]) is True  # body = taken
        assert int(loop._trip[entry]) == 5
        assert int(loop._conf[entry]) >= loop.CONF_THRESHOLD

    def test_drifted_counter_does_not_predict_exit_repeatedly(self):
        """If spec_iter overshoots the trip (missed speculative update),
        the predictor must fall back to the body direction, not predict
        the exit on every remaining iteration."""
        loop = LoopPredictor("loop", n_entries=16)
        run_loop_iterations(loop, trips=5, rounds=8)  # confident entry
        entry = loop._entry_for(0)
        assert int(loop._conf[entry]) >= loop.CONF_THRESHOLD
        # Force a drifted speculative counter beyond the trip.
        loop._spec_iter[entry] = int(loop._trip[entry]) + 3
        base = branch_base(taken=True)
        out, _ = loop.lookup(PredictRequest(0, 4), [base])
        body = bool(loop._direction[entry])
        assert out.slots[0].taken == body  # body, not a (false) exit

    def test_exit_predicted_exactly_at_trip(self):
        loop = LoopPredictor("loop", n_entries=16)
        run_loop_iterations(loop, trips=4, rounds=8)
        entry = loop._entry_for(0)
        body = bool(loop._direction[entry])
        loop._spec_iter[entry] = int(loop._trip[entry])
        out, _ = loop.lookup(PredictRequest(0, 4), [branch_base(taken=True)])
        assert out.slots[0].taken == (not body)
