"""Stress tests for the host core: structural limits, mixed control flow,
and correctness under extreme configurations.

The invariant throughout: whatever the configuration, the core commits
exactly the architectural instruction stream — structural pressure may only
cost cycles.
"""

import pytest

from repro import compose, presets
from repro.frontend import Core, CoreConfig
from repro.frontend.config import ICacheConfig
from repro.isa import ProgramBuilder, RA, SP, run_program
from repro.workloads import build_specint
from repro.workloads.generators import (
    WorkloadBuilder,
    emit_recursive,
    emit_switch,
)


def run_exact(program, preset="b2", config=None):
    """Run and assert architectural equivalence; return stats."""
    expected = len(run_program(program))
    core = Core(program, presets.build(preset), config or CoreConfig())
    stats = core.run(max_cycles=500_000)
    assert stats.committed_instructions == expected
    return stats


def mixed_control_program(rounds=25):
    """Calls, returns, indirect dispatch, hard and easy branches together."""
    w = WorkloadBuilder("mixed", seed=9)
    w.add(emit_recursive, depth=6)
    w.add(emit_switch, n=12, n_cases=4)
    return w.build(rounds)


class TestStructuralLimits:
    def test_tiny_fetch_buffer(self):
        program = build_specint("xz", scale=0.08)
        stats = run_exact(program, config=CoreConfig(fetch_buffer_packets=1))
        assert stats.cycles > 0

    def test_tiny_rob(self):
        program = build_specint("xz", scale=0.08)
        run_exact(program, config=CoreConfig(rob_entries=8))

    def test_narrow_decode_and_commit(self):
        program = build_specint("gcc", scale=0.08)
        narrow = run_exact(
            program, config=CoreConfig(decode_width=1, commit_width=1)
        )
        wide = run_exact(program, config=CoreConfig())
        assert narrow.ipc < wide.ipc
        assert narrow.ipc <= 1.0 + 1e-9  # cannot beat 1-wide commit

    def test_tiny_ftq_stalls_but_stays_correct(self):
        program = build_specint("xz", scale=0.08)
        predictor = presets.build("b2", ftq_entries=4)
        expected = len(run_program(program))
        core = Core(program, predictor, CoreConfig())
        stats = core.run(max_cycles=500_000)
        assert stats.committed_instructions == expected
        assert stats.fetch_bubble_cycles > 0  # FTQ-full stalls happened

    def test_rob_larger_than_ftq_capacity(self):
        """Packets cannot outrun history-file entries."""
        program = build_specint("exchange2", scale=0.08)
        predictor = presets.build("tage_l", ftq_entries=8)
        core = Core(program, predictor, CoreConfig(rob_entries=128))
        expected = len(run_program(program))
        stats = core.run(max_cycles=500_000)
        assert stats.committed_instructions == expected


class TestMixedControlFlow:
    @pytest.mark.parametrize("preset", ["tage_l", "b2", "tourney"])
    def test_calls_switches_and_branches(self, preset):
        run_exact(mixed_control_program(), preset)

    def test_deep_recursion_beyond_ras(self):
        """Recursion deeper than the RAS: returns mispredict but the
        architectural stream is intact."""
        b = ProgramBuilder("deep")
        b.li(SP, 80_000)
        b.li(1, 40)  # depth 40 > RAS depth 8
        b.call("rec")
        b.halt()
        b.label("rec")
        b.addi(SP, SP, -2)
        b.st(RA, SP, 0)
        b.st(1, SP, 1)
        b.beq(1, 0, "base")
        b.addi(1, 1, -1)
        b.call("rec")
        b.label("base")
        b.ld(1, SP, 1)
        b.ld(RA, SP, 0)
        b.addi(SP, SP, 2)
        b.ret()
        program = b.build()
        config = CoreConfig(ras_depth=8)
        run_exact(program, "tage_l", config)

    def test_alternating_call_sites(self):
        """Two call sites into one function: the RAS must steer each return
        to the right place."""
        b = ProgramBuilder("alt")
        b.li(1, 0)
        b.li(2, 30)
        b.label("top")
        b.call("fn")
        b.addi(3, 3, 1)
        b.call("fn")
        b.addi(4, 4, 1)
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        b.label("fn")
        b.addi(5, 5, 1)
        b.ret()
        program = b.build()
        stats = run_exact(program, "tage_l")
        # Warm returns should not mispredict: RAS steering works.
        assert stats.target_mispredicts < 8

    def test_branch_into_middle_of_packet(self):
        """A taken branch targeting a non-aligned pc: mid-packet fetch."""
        b = ProgramBuilder("mid")
        b.li(1, 0)
        b.li(2, 40)
        b.label("top")          # ensure target lands mid-packet
        b.nop()
        b.nop()
        b.addi(1, 1, 1)
        b.nop()
        b.nop()
        b.blt(1, 2, "back")
        b.halt()
        b.label("back")
        b.jump("top")
        program = b.build()
        run_exact(program, "tage_l")

    def test_self_loop_single_instruction(self):
        """A branch that targets itself (degenerate loop)."""
        b = ProgramBuilder("self")
        b.li(1, 0)
        b.li(2, 50)
        b.label("spin")
        b.addi(1, 1, 1)
        b.blt(1, 2, "spin")
        b.halt()
        run_exact(b.build(), "b2")


class TestSingleStagePipelines:
    """Depth-1 compositions (every component latency 1) are a special case:
    there is no later pipeline stage to override the fetched path, so fetch
    must follow the pre-decode-corrected final prediction directly.

    Regression for a fuzzer-found crash: a raw stage-1 BTB alias hit on a
    non-CFI slot steered fetch down a path the ROB never learned about, and
    a wrong-path instruction reached commit (found by ``repro fuzz run
    --seed 0``, iteration 24, topology ``BTB1 > UBTB1``).
    """

    @pytest.mark.parametrize("topology", ["BTB1", "UBTB1", "BTB1 > UBTB1"])
    def test_depth_one_architecturally_exact(self, topology):
        program = mixed_control_program(rounds=2)
        expected = len(run_program(program))
        predictor = compose(topology)
        stats = Core(program, predictor, CoreConfig()).run(max_cycles=500_000)
        assert stats.committed_instructions == expected


class TestConfigMatrix:
    @pytest.mark.parametrize("repair_mode", ["replay", "no_replay"])
    @pytest.mark.parametrize("serialize", [False, True])
    def test_mode_matrix_architecturally_exact(self, repair_mode, serialize):
        program = build_specint("perlbench", scale=0.06)
        predictor = presets.build(
            "tage_l", ghist_repair_mode=repair_mode, serialize_cfi=serialize
        )
        expected = len(run_program(program))
        stats = Core(program, predictor, CoreConfig()).run(max_cycles=500_000)
        assert stats.committed_instructions == expected

    def test_sfb_with_icache_and_narrow_core(self):
        program = build_specint("gcc", scale=0.06)
        config = CoreConfig(
            decode_width=2,
            commit_width=2,
            sfb_enabled=True,
            icache=ICacheConfig(enabled=True, n_sets=8, n_ways=2),
        )
        run_exact(program, "tage_l", config)

    def test_deterministic_across_runs(self):
        program = build_specint("leela", scale=0.08)
        a = Core(program, presets.build("tage_l"), CoreConfig()).run()
        b = Core(program, presets.build("tage_l"), CoreConfig()).run()
        assert a.cycles == b.cycles
        assert a.branch_mispredicts == b.branch_mispredicts
