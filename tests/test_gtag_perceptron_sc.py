"""Tests for GTag, the perceptron, and the statistical corrector."""

from repro.components.gtag import GTag
from repro.components.perceptron import Perceptron
from repro.components.statistical_corrector import StatisticalCorrector
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.prediction import PredictionVector


def branch_base(pc=0, width=4, taken=False, all_slots=False):
    base = PredictionVector.fallthrough(pc, width)
    slots = base.slots if all_slots else [base.slots[0]]
    for slot in slots:
        slot.hit = True
        slot.is_branch = True
        slot.taken = taken
    return base


def bundle(pc, slot, taken, meta, ghist=0, mispredicted=False, width=4):
    return UpdateBundle(
        fetch_pc=pc, width=width, ghist=ghist, meta=meta,
        br_mask=tuple(i == slot for i in range(width)),
        taken_mask=tuple(taken if i == slot else False for i in range(width)),
        mispredicted=mispredicted,
        mispredict_idx=slot if mispredicted else None,
        cfi_is_br=True,
        cfi_idx=slot if taken else None,
        cfi_taken=taken,
    )


class TestGTag:
    def test_miss_passes_through(self):
        g = GTag("g", n_sets=32, history_bits=8)
        out, meta = g.lookup(PredictRequest(0, 4, 0b1010), [branch_base(taken=True)])
        assert out.slots[0].taken  # pass-through
        assert g._codec.unpack(meta)["hit"] == 0

    def test_allocates_on_mispredict_and_overrides(self):
        g = GTag("g", n_sets=32, history_bits=8)
        ghist = 0b1100
        _, meta = g.lookup(PredictRequest(0, 4, ghist), [branch_base()])
        g.on_update(bundle(0, 0, True, meta, ghist=ghist, mispredicted=True))
        # Train the counter up once more.
        _, meta = g.lookup(PredictRequest(0, 4, ghist), [branch_base()])
        g.on_update(bundle(0, 0, True, meta, ghist=ghist))
        out, meta = g.lookup(PredictRequest(0, 4, ghist), [branch_base()])
        assert g._codec.unpack(meta)["hit"] == 1
        assert out.slots[0].taken

    def test_history_disambiguates(self):
        g = GTag("g", n_sets=32, history_bits=8)
        for ghist, taken in ((0b1111, True), (0b0101, False)):
            for round_idx in range(3):
                _, meta = g.lookup(PredictRequest(0, 4, ghist), [branch_base()])
                g.on_update(bundle(0, 0, taken, meta, ghist=ghist,
                                   mispredicted=(round_idx == 0)))
        out_t, _ = g.lookup(PredictRequest(0, 4, 0b1111), [branch_base()])
        out_n, _ = g.lookup(PredictRequest(0, 4, 0b0101), [branch_base()])
        assert out_t.slots[0].taken
        assert not out_n.slots[0].taken

    def test_storage_counts_tags(self):
        report = GTag("g", n_sets=512).storage()
        assert "tags" in report.breakdown and "counters" in report.breakdown


class TestPerceptron:
    def test_single_prediction_per_packet(self):
        """§III-C: the perceptron predicts only the first branch slot."""
        p = Perceptron("p", n_entries=32, history_bits=8)
        base = branch_base(all_slots=True)
        out, meta = p.lookup(PredictRequest(0, 4, 0), [base])
        fields = p._codec.unpack(meta)
        assert fields["cand_valid"] == 1 and fields["lane"] == 0

    def test_learns_history_correlation(self):
        p = Perceptron("p", n_entries=32, history_bits=8)
        # Outcome equals history bit 2.
        misses = 0
        for i in range(400):
            ghist = (i * 0x9E37) & 0xFF
            taken = bool((ghist >> 2) & 1)
            out, meta = p.lookup(PredictRequest(0, 4, ghist), [branch_base()])
            if i >= 200 and out.slots[0].taken != taken:
                misses += 1
            p.on_update(bundle(0, 0, taken, meta, ghist=ghist))
        assert misses < 10

    def test_no_branch_no_candidate(self):
        p = Perceptron("p", n_entries=32, history_bits=8)
        out, meta = p.lookup(PredictRequest(0, 4, 0), [PredictionVector.fallthrough(0, 4)])
        assert p._codec.unpack(meta)["cand_valid"] == 0

    def test_weights_clamped(self):
        p = Perceptron("p", n_entries=8, history_bits=4, weight_bits=4)
        for _ in range(100):
            _, meta = p.lookup(PredictRequest(0, 4, 0b1111), [branch_base()])
            p.on_update(bundle(0, 0, True, meta, ghist=0b1111))
        assert p._weights.max() <= 7 and p._weights.min() >= -8

    def test_storage(self):
        p = Perceptron("p", n_entries=256, history_bits=24, weight_bits=8)
        assert p.storage().sram_bits == 256 * 25 * 8


class TestStatisticalCorrector:
    def test_agrees_when_untrained(self):
        sc = StatisticalCorrector("sc", n_sets=64)
        out, _ = sc.lookup(PredictRequest(0, 4, 0), [branch_base(taken=True)])
        assert out.slots[0].taken  # never flips a cold prediction

    def test_flips_systematically_wrong_incoming(self):
        sc = StatisticalCorrector("sc", n_sets=64)
        ghist = 0b110011
        # Incoming always predicts taken, the branch is always not-taken.
        flipped_late = 0
        for i in range(120):
            out, meta = sc.lookup(
                PredictRequest(0, 4, ghist), [branch_base(taken=True)]
            )
            if i >= 60 and not out.slots[0].taken:
                flipped_late += 1
            sc.on_update(bundle(0, 0, False, meta, ghist=ghist))
        assert flipped_late > 50

    def test_does_not_flip_mostly_right_incoming(self):
        sc = StatisticalCorrector("sc", n_sets=64)
        ghist = 0b1
        flips = 0
        for i in range(200):
            taken = (i % 10) != 0  # incoming 'taken' right 90% of the time
            out, meta = sc.lookup(
                PredictRequest(0, 4, ghist), [branch_base(taken=True)]
            )
            flips += not out.slots[0].taken
            sc.on_update(bundle(0, 0, taken, meta, ghist=ghist))
        assert flips < 20

    def test_counters_saturate(self):
        sc = StatisticalCorrector("sc", n_sets=64, counter_bits=6)
        for _ in range(200):
            _, meta = sc.lookup(PredictRequest(0, 4, 0), [branch_base(taken=True)])
            sc.on_update(bundle(0, 0, True, meta, ghist=0))
        for table in sc._tables:
            assert table.max() <= 31 and table.min() >= -32
