"""Tests for the HBIM bimodal counter table."""

import pytest

from repro.components.bimodal import HBIM
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import InterfaceError
from repro.core.prediction import PredictionVector


def lookup(bim, pc=0, ghist=0, lhist=0, width=4):
    req = PredictRequest(pc, width, ghist, lhist)
    base = PredictionVector.fallthrough(pc, width)
    return bim.lookup(req, [base])


def update(bim, pc, br_mask, taken_mask, meta, ghist=0, lhist=0):
    bim.on_update(
        UpdateBundle(
            fetch_pc=pc,
            width=len(br_mask),
            ghist=ghist,
            lhist=lhist,
            meta=meta,
            br_mask=tuple(br_mask),
            taken_mask=tuple(taken_mask),
        )
    )


class TestPrediction:
    def test_initial_weakly_not_taken(self):
        bim = HBIM("bim", n_sets=64)
        out, _ = lookup(bim)
        assert all(slot.hit for slot in out.slots)
        assert not any(slot.taken for slot in out.slots)

    def test_passes_through_targets(self):
        bim = HBIM("bim", n_sets=64)
        base = PredictionVector.fallthrough(0, 4)
        base.slots[2].target = 99
        base.slots[2].is_branch = True
        out, _ = bim.lookup(PredictRequest(0, 4), [base])
        assert out.slots[2].target == 99
        assert out.slots[2].is_branch

    def test_does_not_touch_jump_direction(self):
        bim = HBIM("bim", n_sets=64)
        base = PredictionVector.fallthrough(0, 4)
        base.slots[1].is_jump = True
        base.slots[1].taken = True
        out, _ = bim.lookup(PredictRequest(0, 4), [base])
        assert out.slots[1].taken


class TestLearning:
    def test_learns_taken_after_two_updates(self):
        bim = HBIM("bim", n_sets=64)
        for _ in range(2):
            _, meta = lookup(bim)
            update(bim, 0, [True, False, False, False], [True, False, False, False], meta)
        out, _ = lookup(bim)
        assert out.slots[0].taken
        assert not out.slots[1].taken  # other lanes untouched

    def test_superscalar_lanes_independent(self):
        """Two branches in one packet learn opposite directions (§III-C)."""
        bim = HBIM("bim", n_sets=64)
        for _ in range(3):
            _, meta = lookup(bim)
            update(bim, 0, [True, True, False, False], [True, False, False, False], meta)
        out, _ = lookup(bim)
        assert out.slots[0].taken
        assert not out.slots[1].taken

    def test_mid_packet_lane_alignment(self):
        """A packet entered mid-way updates the correct lanes."""
        bim = HBIM("bim", n_sets=64)
        # pc 2 in a 4-wide packet: slots map to lanes 2,3.
        for _ in range(2):
            _, meta = lookup(bim, pc=2, width=2)
            update(bim, 2, [True, False], [True, False], meta)
        out, _ = lookup(bim, pc=2, width=2)
        assert out.slots[0].taken
        # Aligned lookup sees the learned counter in lane 2.
        out_full, _ = lookup(bim, pc=0)
        assert out_full.slots[2].taken

    def test_update_uses_metadata_not_table(self):
        """Update trains from predict-time counters (§III-D): a stale meta
        writes the stale-based value back."""
        bim = HBIM("bim", n_sets=64)
        _, meta_old = lookup(bim)  # counters all weak-NT (1)
        # Another context trains the counter up to 3 meanwhile.
        for _ in range(2):
            _, m = lookup(bim)
            update(bim, 0, [True] + [False] * 3, [True] + [False] * 3, m)
        # Now apply the stale meta: 1 -> 2, overwriting the 3.
        update(bim, 0, [True] + [False] * 3, [True] + [False] * 3, meta_old)
        assert bim.counter_at(bim._index(0, 0, 0), 0) == 2

    def test_no_branches_no_write(self):
        bim = HBIM("bim", n_sets=64)
        _, meta = lookup(bim)
        before = bim._table.copy()
        update(bim, 0, [False] * 4, [False] * 4, meta)
        assert (bim._table == before).all()


class TestIndexing:
    def test_ghist_indexed_rows_differ(self):
        bim = HBIM("gbim", n_sets=64, index="ghist", history_bits=16)
        assert bim.uses_global_history
        _, meta = lookup(bim, ghist=0b101010)
        update(bim, 0, [True] + [False] * 3, [True] + [False] * 3, meta, ghist=0b101010)
        _, meta = lookup(bim, ghist=0b101010)
        update(bim, 0, [True] + [False] * 3, [True] + [False] * 3, meta, ghist=0b101010)
        taken_same, _ = lookup(bim, ghist=0b101010)
        taken_diff, _ = lookup(bim, ghist=0b010101)
        assert taken_same.slots[0].taken
        assert not taken_diff.slots[0].taken

    def test_latency1_with_history_rejected(self):
        with pytest.raises(InterfaceError):
            HBIM("bad", latency=1, n_sets=64, index="ghist", history_bits=8)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            HBIM("bad", n_sets=100)


class TestStorageAndReset:
    def test_storage_bits(self):
        bim = HBIM("bim", n_sets=1024, fetch_width=4, counter_bits=2)
        assert bim.storage().sram_bits == 1024 * 4 * 2

    def test_reset_restores_weak_nt(self):
        bim = HBIM("bim", n_sets=64)
        for _ in range(3):
            _, meta = lookup(bim)
            update(bim, 0, [True] + [False] * 3, [True] + [False] * 3, meta)
        bim.reset()
        out, _ = lookup(bim)
        assert not out.slots[0].taken

    def test_meta_bits_cover_row(self):
        bim = HBIM("bim", n_sets=64, fetch_width=4, counter_bits=2)
        assert bim.meta_bits == 8
