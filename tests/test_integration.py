"""Cross-module integration tests: whole-system invariants on real
workloads, consistency between the composer's and the core's accounting,
and the headline Fig. 10 ordering on a fast subset."""

import pytest

from repro import presets
from repro.eval import run_workload
from repro.frontend import Core, CoreConfig
from repro.isa import run_program
from repro.workloads import build_coremark, build_dhrystone, build_specint


@pytest.fixture(scope="module")
def dhrystone():
    return build_dhrystone(scale=0.25)


class TestAccountingConsistency:
    def test_composer_and_core_agree_on_mispredicts(self, dhrystone):
        predictor = presets.build("b2")
        core = Core(dhrystone, predictor, CoreConfig())
        stats = core.run()
        assert predictor.stats.direction_mispredicts == stats.branch_mispredicts
        assert predictor.stats.target_mispredicts == stats.target_mispredicts

    def test_committed_packets_cover_instructions(self, dhrystone):
        predictor = presets.build("b2")
        core = Core(dhrystone, predictor, CoreConfig())
        stats = core.run()
        # Every committed instruction belongs to some committed packet of
        # <= fetch_width instructions.
        total = stats.committed_instructions + stats.committed_predicated
        assert predictor.stats.committed_packets >= total / 4

    def test_history_file_drains_at_halt(self, dhrystone):
        predictor = presets.build("tage_l")
        core = Core(dhrystone, predictor, CoreConfig())
        core.run()
        # Entries may remain for in-flight wrong-path packets, but never
        # more than capacity.
        assert len(predictor.history_file) <= predictor.config.ftq_entries

    def test_oracle_instruction_count_exact(self, dhrystone):
        expected = len(run_program(dhrystone))
        for preset in ("tage_l", "b2", "tourney"):
            stats = Core(dhrystone, presets.build(preset), CoreConfig()).run()
            assert stats.committed_instructions == expected


class TestHeadlineOrdering:
    """The qualitative Fig. 10 claims, on one fast hard workload and one
    fast easy workload."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for bench, scale in (("xz", 0.35), ("exchange2", 0.35)):
            program = build_specint(bench, scale=scale)
            out[bench] = {
                name: run_workload(name, program)
                for name in ("tage_l", "b2", "tourney")
            }
        return out

    def test_tage_l_most_accurate_on_hard_code(self, results):
        xz = results["xz"]
        assert xz["tage_l"].mpki <= xz["b2"].mpki
        assert xz["tage_l"].mpki <= xz["tourney"].mpki

    def test_tage_l_best_ipc(self, results):
        for bench in results:
            best = results[bench]["tage_l"].ipc
            assert best >= results[bench]["b2"].ipc
            assert best >= results[bench]["tourney"].ipc

    def test_easy_code_is_predictable(self, results):
        assert results["exchange2"]["tage_l"].branch_accuracy > 0.95


class TestSection6Effects:
    def test_ghist_replay_beats_no_replay_on_accuracy(self):
        """§VI-B: repairing + replaying improves prediction accuracy."""
        program = build_specint("xz", scale=0.5)
        replay = run_workload(
            presets.build("tage_l", ghist_repair_mode="replay"),
            program, system_name="replay",
        )
        stale = run_workload(
            presets.build("tage_l", ghist_repair_mode="no_replay",
                          ghist_corruption_window=8),
            program, system_name="no_replay",
        )
        assert replay.branch_mispredicts <= stale.branch_mispredicts

    def test_tage_latency_increase_small_ipc_cost(self):
        """§VI-A: TAGE at 3 cycles costs little vs 2 cycles."""
        program = build_specint("x264", scale=0.4)
        fast = run_workload(presets.build("tage_l", tage_latency=2), program,
                            system_name="tage2")
        slow = run_workload(presets.build("tage_l", tage_latency=3), program,
                            system_name="tage3")
        assert slow.ipc >= fast.ipc * 0.9  # "minimal (~1%) degradation"
        assert abs(slow.mpki - fast.mpki) < 5.0

    def test_sfb_improves_coremark(self):
        """§VI-C: hammock predication lifts CoreMark accuracy."""
        program = build_coremark(scale=0.4)
        base = Core(program, presets.build("tage_l"), CoreConfig()).run()
        sfb = Core(program, presets.build("tage_l"),
                   CoreConfig(sfb_enabled=True)).run()
        assert sfb.branch_accuracy > base.branch_accuracy
        assert sfb.ipc > base.ipc
