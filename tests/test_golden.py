"""Golden-stats regression gate: snapshot integrity and drift detection."""

import json

import pytest

from repro.cli import main
from repro.eval import golden

GOLDEN_PATH = "goldens/golden_stats.json"


@pytest.fixture(scope="module")
def fresh():
    """One fresh run of the golden matrix, shared across this module."""
    return golden.collect_stats()


@pytest.fixture(scope="module")
def committed():
    return golden.load_goldens(GOLDEN_PATH)


class TestCommittedSnapshot:
    def test_schema_and_suite(self, committed):
        assert committed["schema"] == golden.GOLDEN_SCHEMA
        assert committed["suite"]["presets"] == list(golden.GOLDEN_PRESETS)
        assert committed["suite"]["workloads"] == list(golden.GOLDEN_WORKLOADS)

    def test_covers_full_matrix(self, committed):
        for preset in golden.GOLDEN_PRESETS:
            assert set(committed["entries"][preset]) == set(
                golden.GOLDEN_WORKLOADS
            )

    def test_entries_are_meaningful(self, committed):
        """Golden cells must exercise the mispredict/repair machinery."""
        for cells in committed["entries"].values():
            for cell in cells.values():
                assert cell["cycle"]["cycles"] > 0
                assert cell["cycle"]["instructions"] > 0
                assert cell["cycle"]["repair"]["walks"] > 0
                assert cell["cycle"]["components"]
                assert cell["trace"]["branches"] > 0
                assert cell["trace"]["instructions"] > 0

    def test_fresh_run_matches_committed(self, committed, fresh):
        """The actual gate: simulation semantics drifted if this fails.

        If the change is intentional, regenerate with
        ``python -m repro golden --update`` and commit the diff.
        """
        messages = golden.diff_goldens(committed, fresh)
        assert not messages, "\n".join(messages)


class TestDriftDetection:
    def test_perturbed_counter_detected(self, committed):
        perturbed = json.loads(json.dumps(committed))
        perturbed["entries"]["b2"]["dispatch"]["cycle"]["cycles"] += 1
        messages = golden.diff_goldens(committed, perturbed)
        assert len(messages) == 1
        assert "b2.dispatch.cycle.cycles" in messages[0]

    def test_perturbed_trace_counter_detected(self, committed):
        perturbed = json.loads(json.dumps(committed))
        perturbed["entries"]["b2"]["dispatch"]["trace"]["mispredicts"] += 1
        messages = golden.diff_goldens(committed, perturbed)
        assert len(messages) == 1
        assert "b2.dispatch.trace.mispredicts" in messages[0]

    def test_perturbed_component_counter_detected(self, committed):
        perturbed = json.loads(json.dumps(committed))
        entry = perturbed["entries"]["tourney"]["biased"]["cycle"]
        name = sorted(entry["components"])[0]
        entry["components"][name]["direction_wrong"] += 5
        messages = golden.diff_goldens(committed, perturbed)
        assert any(
            f"tourney.biased.cycle.components.{name}" in m for m in messages
        )

    def test_missing_cell_detected(self, committed):
        perturbed = json.loads(json.dumps(committed))
        del perturbed["entries"]["tage_l"]["biased"]
        messages = golden.diff_goldens(committed, perturbed)
        assert any("tage_l.biased" in m for m in messages)

    def test_schema_mismatch_short_circuits(self, committed):
        perturbed = json.loads(json.dumps(committed))
        perturbed["schema"] = golden.GOLDEN_SCHEMA + 1
        messages = golden.diff_goldens(committed, perturbed)
        assert len(messages) == 1
        assert "schema" in messages[0]

    def test_suite_change_short_circuits(self, committed):
        perturbed = json.loads(json.dumps(committed))
        perturbed["suite"]["max_instructions"] += 1
        messages = golden.diff_goldens(committed, perturbed)
        assert len(messages) == 1
        assert "suite" in messages[0]


class TestCheckApi:
    def test_check_passes_with_fresh_payload(self, fresh):
        ok, messages = golden.check_goldens(GOLDEN_PATH, fresh=fresh)
        assert ok and not messages

    def test_check_fails_on_perturbed_payload(self, fresh):
        perturbed = json.loads(json.dumps(fresh))
        preset = golden.GOLDEN_PRESETS[0]
        workload = golden.GOLDEN_WORKLOADS[0]
        perturbed["entries"][preset][workload]["cycle"]["branch_mispredicts"] += 1
        ok, messages = golden.check_goldens(GOLDEN_PATH, fresh=perturbed)
        assert not ok
        assert any("branch_mispredicts" in m for m in messages)

    def test_check_missing_snapshot(self, tmp_path, fresh):
        ok, messages = golden.check_goldens(tmp_path / "nope.json", fresh=fresh)
        assert not ok
        assert "no golden snapshot" in messages[0]

    def test_check_corrupt_snapshot(self, tmp_path, fresh):
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        ok, messages = golden.check_goldens(bad, fresh=fresh)
        assert not ok
        assert "unreadable" in messages[0]

    def test_update_then_check_round_trips(self, tmp_path, fresh):
        target = tmp_path / "sub" / "goldens.json"
        golden.save_goldens(fresh, target)
        ok, messages = golden.check_goldens(target, fresh=fresh)
        assert ok, messages
        assert golden.load_goldens(target) == fresh


class TestCli:
    def test_golden_check_exit_codes(self, tmp_path, fresh, capsys):
        target = tmp_path / "goldens.json"
        golden.save_goldens(fresh, target)
        assert main(["golden", "--check", "--path", str(target)]) == 0
        out = capsys.readouterr().out
        assert "golden stats match" in out

        perturbed = json.loads(json.dumps(fresh))
        preset = golden.GOLDEN_PRESETS[0]
        workload = golden.GOLDEN_WORKLOADS[0]
        perturbed["entries"][preset][workload]["cycle"]["cycles"] += 1
        golden.save_goldens(perturbed, target)
        assert main(["golden", "--check", "--path", str(target)]) == 1
        out = capsys.readouterr().out
        assert "MISMATCH" in out

    def test_golden_update_writes_snapshot(self, tmp_path, capsys):
        target = tmp_path / "fresh.json"
        assert main(["golden", "--update", "--path", str(target)]) == 0
        payload = golden.load_goldens(target)
        assert payload["schema"] == golden.GOLDEN_SCHEMA
