"""Tests for the pipeline visualizer and the design-space sweep."""

import pytest

from repro import presets
from repro.core import render_pipeline, render_timing
from repro.eval import evaluate_designs, format_points, pareto_frontier
from repro.eval.sweep import DesignPoint
from repro.workloads import build_specint


class TestRenderPipeline:
    def test_contains_all_components(self):
        text = render_pipeline(presets.tage_l())
        for name in ("ubtb", "bim", "btb", "tage", "loop"):
            assert name in text

    def test_respond_stage_matches_latency(self):
        text = render_pipeline(presets.b2())
        for line in text.splitlines():
            if line.startswith("gtag"):
                # gtag responds at F3 (third stage column).
                assert line.split().index("respond") == 3

    def test_final_row_progression(self):
        """Fig. 7: the uBTB provides Fetch-1; the topology head, Fetch-3."""
        text = render_pipeline(presets.tage_l())
        final = [l for l in text.splitlines() if l.startswith("final:")][0]
        assert "ubtb" in final
        assert "loop" in final

    def test_arbitration_renders(self):
        text = render_pipeline(presets.tourney())
        assert "tourney" in text

    def test_timing_diagram(self):
        text = render_timing(3)
        assert "query" in text and "hist" in text and "pred" in text

    def test_timing_latency_one(self):
        text = render_timing(1)
        assert "pred" in text

    def test_timing_invalid(self):
        with pytest.raises(ValueError):
            render_timing(0)


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        programs = {"xz": build_specint("xz", scale=0.12)}
        designs = {
            "b2": lambda: presets.build("b2"),
            "tage_l": lambda: presets.build("tage_l"),
            "tage_small": lambda: presets.build("tage_l", tage_sets=128),
        }
        return evaluate_designs(designs, programs)

    def test_points_have_metrics(self, points):
        for p in points:
            assert p.area_um2 > 0
            assert 0 < p.mean_accuracy <= 1
            assert "xz" in p.per_workload_mpki

    def test_pareto_frontier_nonempty_subset(self, points):
        frontier = pareto_frontier(points)
        assert frontier
        assert set(p.name for p in frontier) <= set(p.name for p in points)
        # Frontier is sorted by area and no frontier point dominates another.
        areas = [p.area_um2 for p in frontier]
        assert areas == sorted(areas)
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not a.dominates(b) or not b.dominates(a)

    def test_dominance_semantics(self):
        small_good = DesignPoint("a", "", 1.0, 1.0, 0.99, 100.0, 1.0, {})
        big_bad = DesignPoint("b", "", 2.0, 0.9, 0.95, 200.0, 2.0, {})
        assert small_good.dominates(big_bad)
        assert not big_bad.dominates(small_good)
        frontier = pareto_frontier([small_good, big_bad])
        assert [p.name for p in frontier] == ["a"]

    def test_format_points(self, points):
        text = format_points(points)
        assert "topology" in text
        assert "b2" in text
