"""Semantics tests for the topology model — including the paper's §IV-A
worked example: two orderings of {uBTB1, PHT2, LOOP2} that agree at Fetch-1
and diverge at Fetch-2 (experiment E11 in DESIGN.md)."""

import pytest

from repro.core.events import PredictRequest
from repro.core.interface import InterfaceError, PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector
from repro.core.topology import (
    Arbitrate,
    Leaf,
    Override,
    merge_by_hit,
    validate_topology,
)


class StubPredictor(PredictorComponent):
    """Configurable stub: optionally hits slot 0 with a fixed direction."""

    def __init__(self, name, latency, hits=True, taken=True, target=None,
                 n_inputs=1, meta=0, meta_bits=8):
        super().__init__(name, latency, meta_bits=meta_bits, n_inputs=n_inputs)
        self.hits = hits
        self.taken = taken
        self.target = target
        self.meta = meta
        self.seen_predict_in = None

    def lookup(self, req, predict_in):
        self.seen_predict_in = [v.copy() for v in predict_in]
        out = predict_in[0].copy()
        if self.hits:
            slot = out.slots[0]
            slot.hit = True
            slot.is_branch = True
            slot.taken = self.taken
            if self.target is not None:
                slot.target = self.target
        return out, self.meta

    def storage(self):
        return StorageReport(self.name)


class ChooseSecond(StubPredictor):
    """Arbiter stub that always selects its second input."""

    def lookup(self, req, predict_in):
        self.seen_predict_in = [v.copy() for v in predict_in]
        return predict_in[1].copy(), self.meta


REQ = PredictRequest(fetch_pc=0, width=4)


def evaluate(node, depth):
    metas = {}
    staged = node.evaluate(REQ, depth, metas)
    return staged, metas


class TestLeaf:
    def test_responds_at_latency(self):
        leaf = Leaf(StubPredictor("a", 2))
        staged, _ = evaluate(leaf, 3)
        assert staged[0] is None
        assert staged[1] is not None and staged[1].slots[0].hit
        assert staged[2] is staged[1]

    def test_meta_recorded(self):
        leaf = Leaf(StubPredictor("a", 1, meta=0x5A))
        _, metas = evaluate(leaf, 1)
        assert metas["a"] == 0x5A

    def test_arbiter_cannot_be_leaf(self):
        with pytest.raises(InterfaceError):
            Leaf(StubPredictor("sel", 2, n_inputs=2))


class TestOverride:
    def test_slow_over_fast_pass_through(self):
        """PHT2 > uBTB1: uBTB at stage 1, PHT overrides at stage 2."""
        ubtb = StubPredictor("ubtb", 1, taken=True, target=40)
        pht = StubPredictor("pht", 2, taken=False)
        node = Override(pht, Leaf(ubtb))
        staged, _ = evaluate(node, 2)
        assert staged[0].slots[0].taken is True  # uBTB's stage-1 prediction
        assert staged[1].slots[0].taken is False  # PHT overrode direction
        # PHT received the uBTB prediction as predict_in (§III-F).
        assert pht.seen_predict_in[0].slots[0].target == 40

    def test_miss_passes_through(self):
        """A missing upper component leaves the lower prediction standing."""
        base = StubPredictor("base", 1, taken=True)
        top = StubPredictor("top", 2, hits=False)
        staged, _ = evaluate(Override(top, Leaf(base)), 2)
        assert staged[1].slots[0].taken is True

    def test_fast_over_slow_structural_mux(self):
        """uBTB1 > PHT2: a uBTB hit wins at stages 1 AND 2 (§IV-A)."""
        ubtb = StubPredictor("ubtb", 1, taken=True)
        pht = StubPredictor("pht", 2, taken=False)
        node = Override(ubtb, Leaf(pht))
        staged, _ = evaluate(node, 2)
        assert staged[0].slots[0].taken is True
        assert staged[1].slots[0].taken is True  # uBTB remains final

    def test_fast_over_slow_miss_defers(self):
        """uBTB1 > PHT2 with a uBTB miss: PHT provides the stage-2 answer."""
        ubtb = StubPredictor("ubtb", 1, hits=False)
        pht = StubPredictor("pht", 2, taken=False)
        staged, _ = evaluate(Override(ubtb, Leaf(pht)), 2)
        assert staged[0].slots[0].hit is False
        assert staged[1].slots[0].hit is True
        assert staged[1].slots[0].taken is False

    def test_worked_example_orderings_agree_at_stage1(self):
        """Both §IV-A topologies give identical Fetch-1 predictions."""

        def build(order):
            ubtb = StubPredictor("ubtb", 1, taken=True, target=9)
            pht = StubPredictor("pht", 2, taken=False)
            loop = StubPredictor("loop", 2, taken=True)
            if order == "loop_top":  # LOOP2 > PHT2 > uBTB1
                return Override(loop, Override(pht, Leaf(ubtb)))
            return Override(ubtb, Override(pht, Leaf(loop)))  # uBTB1 > PHT2 > LOOP2

        s1, _ = evaluate(build("loop_top"), 2)
        s2, _ = evaluate(build("ubtb_top"), 2)
        assert s1[0].slots[0] == s2[0].slots[0]
        # ...but the stage-2 predictions differ: loop_top lets the loop win,
        # ubtb_top keeps the uBTB prediction.
        assert s1[1].slots[0].taken is True  # loop override
        assert s2[1].slots[0].taken is True  # ubtb retained
        # Distinguish by the direction the PHT wanted:
        pht_only, _ = evaluate(
            Override(StubPredictor("pht", 2, taken=False), Leaf(StubPredictor("u", 1, taken=True))), 2
        )
        assert pht_only[1].slots[0].taken is False

    def test_arbiter_cannot_head_override(self):
        sel = StubPredictor("sel", 2, n_inputs=2)
        with pytest.raises(InterfaceError):
            Override(sel, Leaf(StubPredictor("a", 1)))


class TestArbitrate:
    def test_selector_sees_all_children(self):
        a = StubPredictor("a", 2, taken=True)
        b = StubPredictor("b", 2, taken=False)
        sel = ChooseSecond("sel", 3, n_inputs=2)
        staged, _ = evaluate(Arbitrate(sel, [Leaf(a), Leaf(b)]), 3)
        assert len(sel.seen_predict_in) == 2
        assert staged[2].slots[0].taken is False  # chose second

    def test_first_child_is_pre_arbitration_default(self):
        a = StubPredictor("a", 2, taken=True)
        b = StubPredictor("b", 2, taken=False)
        sel = ChooseSecond("sel", 3, n_inputs=2)
        staged, _ = evaluate(Arbitrate(sel, [Leaf(a), Leaf(b)]), 3)
        assert staged[1].slots[0].taken is True  # child a, before selection

    def test_child_count_must_match_selector(self):
        sel = StubPredictor("sel", 3, n_inputs=2)
        children = [Leaf(StubPredictor(n, 2)) for n in "abc"]
        with pytest.raises(InterfaceError):
            Arbitrate(sel, children)

    def test_requires_two_children(self):
        sel = StubPredictor("sel", 3, n_inputs=2)
        with pytest.raises(InterfaceError):
            Arbitrate(sel, [Leaf(StubPredictor("a", 2))])


class TestMergeByHit:
    def test_winner_slot_taken_when_hit(self):
        w = PredictionVector.fallthrough(0, 2)
        f = PredictionVector.fallthrough(0, 2)
        w.slots[0].hit = True
        w.slots[0].taken = True
        f.slots[1].hit = True
        f.slots[1].target = 5
        merged = merge_by_hit(w, f)
        assert merged.slots[0].taken is True
        assert merged.slots[1].target == 5


class TestValidation:
    def test_duplicate_names_rejected(self):
        a = StubPredictor("same", 1)
        b = StubPredictor("same", 2)
        with pytest.raises(InterfaceError, match="duplicate"):
            validate_topology(Override(b, Leaf(a)))

    def test_component_reuse_rejected(self):
        a = StubPredictor("a", 2)
        with pytest.raises(InterfaceError):
            validate_topology(Override(a, Leaf(a)))

    def test_valid_topology_lists_components(self):
        a = StubPredictor("a", 1)
        b = StubPredictor("b", 2)
        comps = validate_topology(Override(b, Leaf(a)))
        assert [c.name for c in comps] == ["a", "b"]

    def test_describe_roundtrips_notation(self):
        a = StubPredictor("bim", 2)
        b = StubPredictor("tage", 3)
        node = Override(b, Leaf(a))
        assert node.describe() == "TAGE3 > BIM2"
