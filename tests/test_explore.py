"""Design-space exploration (`repro explore`) tests.

Tier-1 coverage of the evolutionary search stack: seeded end-to-end
determinism (same seed, same front), warm-cache resume with zero cold
executions (proved by the cache counters in the provenance block),
grammar-aware operator properties (every mutated/crossed-over candidate
is check-clean and within the storage budget), the exact archive checked
against brute-force dominance, the committed golden snapshot, and the
`explore` fuzz oracle.
"""

import random
from pathlib import Path

import pytest

from repro.analysis.diagnostics import ERROR
from repro.analysis.topology_check import check_spec
from repro.cli import main as cli_main
from repro.eval.cache import ResultCache
from repro.explore import (
    GOLDEN_EXPLORE_CONFIG,
    Candidate,
    ParetoArchive,
    build_schedule,
    candidate_storage_kib,
    check_explore_golden,
    crossover,
    dominates,
    explore,
    load_artifact,
    mutate,
    non_dominated,
    result_payload,
    seed_candidates,
    seed_population,
)
from repro.explore.grammar import parse, units
from repro.explore.halving import promote_count
from repro.explore.pareto import FrontPoint
from repro.explore.population import random_candidate
from repro.fuzz import FuzzConfig, case_for_iteration, run_oracle

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "goldens" / "golden_explore.json"


@pytest.fixture(scope="module")
def cold_run(tmp_path_factory):
    """One cold golden-config search with a fresh cache, shared module-wide."""
    cache_dir = tmp_path_factory.mktemp("explore-cache")
    cache = ResultCache(cache_dir)
    result = explore(GOLDEN_EXPLORE_CONFIG, progress=None)
    # Re-run with the cache attached so the warm-resume test has a primed
    # directory; provenance of this second run records the cold fill.
    import dataclasses

    config = dataclasses.replace(GOLDEN_EXPLORE_CONFIG, cache=cache)
    cached_result = explore(config)
    return result, cached_result, cache_dir


# ----------------------------------------------------------------------
# End-to-end: determinism, resume, golden
# ----------------------------------------------------------------------
def test_same_seed_identical_fronts(cold_run):
    """Two runs with the same seed produce identical Pareto fronts."""
    uncached, cached, _ = cold_run
    assert result_payload(uncached, golden=True) == result_payload(cached, golden=True)
    assert len(uncached.front) > 0


def test_warm_cache_resume_zero_cold_evaluations(cold_run):
    """A resumed run against a warm cache executes zero cold jobs."""
    _, cached, cache_dir = cold_run
    # The priming run had to fill the cache.
    assert cached.provenance["cold_evaluations"] > 0
    import dataclasses

    warm_cache = ResultCache(cache_dir)
    config = dataclasses.replace(GOLDEN_EXPLORE_CONFIG, cache=warm_cache)
    warm = explore(config)
    assert warm.provenance["cold_evaluations"] == 0
    assert warm.provenance["cache_hits"] == warm.provenance["scheduled_cells"]
    assert warm_cache.misses == 0
    assert result_payload(warm, golden=True) == result_payload(cached, golden=True)


def test_golden_snapshot_matches(cold_run):
    """The committed snapshot matches a fresh run of the frozen config."""
    uncached, _, _ = cold_run
    ok, messages = check_explore_golden(GOLDEN_PATH, result=uncached)
    assert ok, "\n".join(messages)


def test_front_dominates_a_seeded_preset(cold_run):
    uncached, _, _ = cold_run
    assert uncached.dominated_seeds(), (
        "fixed-seed search should beat at least one seeded preset "
        "on MPKI-vs-area"
    )
    assert uncached.provenance["dominated_seeds"] == uncached.dominated_seeds()


def test_halving_saves_evaluations(cold_run):
    uncached, _, _ = cold_run
    prov = uncached.provenance
    assert prov["evals_saved_by_halving"] > 0
    assert prov["halving_cold_cells"] < prov["halving_full_cells"]


# ----------------------------------------------------------------------
# Operator properties: check-clean and budget-respecting by construction
# ----------------------------------------------------------------------
def _assert_admissible(child: Candidate, budget_kib: float, max_units: int):
    diagnostics = check_spec(child.spec)
    errors = [d for d in diagnostics if d.severity == ERROR]
    assert not errors, (
        f"operator output {child.spec!r} has error diagnostics: "
        + "; ".join(d.format() for d in errors)
    )
    assert candidate_storage_kib(child) <= budget_kib
    assert len(units(parse(child.spec))) <= max_units
    # describe() is a fixed point: re-parsing it reproduces itself.
    described = child.build().describe()
    rebuilt = Candidate(spec=described, params=child.params)
    assert rebuilt.build().describe() == described


def test_mutations_stay_check_clean_and_in_budget():
    rng = random.Random("explore-test-mutate")
    budget, max_units = 96.0, 8
    pool = seed_population(rng, 8, budget)
    for i in range(40):
        parent = pool[i % len(pool)]
        child = mutate(rng, parent, budget, max_units=max_units)
        _assert_admissible(child, budget, max_units)
        pool.append(child)  # mutate the mutants too


def test_crossovers_stay_check_clean_and_in_budget():
    rng = random.Random("explore-test-crossover")
    budget, max_units = 96.0, 8
    pool = seed_population(rng, 8, budget)
    for i in range(25):
        first = pool[i % len(pool)]
        second = pool[(i * 3 + 1) % len(pool)]
        child = crossover(rng, first, second, budget, max_units=max_units)
        _assert_admissible(child, budget, max_units)
        pool.append(child)


def test_mutate_falls_back_to_parent_under_impossible_budget():
    rng = random.Random("explore-test-tiny-budget")
    parent = seed_candidates()[0]
    child = mutate(rng, parent, budget_kib=0.001)
    assert child.key == parent.key


def test_seed_population_is_deduped_and_in_budget():
    rng = random.Random("explore-test-seeds")
    population = seed_population(rng, 12, 96.0)
    keys = [c.key for c in population]
    assert len(keys) == len(set(keys))
    assert all(candidate_storage_kib(c) <= 96.0 for c in population)
    # Presets lead the population.
    assert population[0].origin.startswith("seed:")


# ----------------------------------------------------------------------
# Archive vs brute-force dominance
# ----------------------------------------------------------------------
def _random_points(rng: random.Random, n: int):
    # Small discrete grids force duplicates and dominance chains.
    return [
        (
            round(rng.uniform(0.0, 8.0), 1),
            float(rng.choice((100, 250, 400, 650, 900))),
            float(rng.randint(1, 4)),
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_archive_matches_brute_force(seed):
    rng = random.Random(f"explore-test-archive:{seed}")
    points = _random_points(rng, 150)
    archive = ParetoArchive()
    for i, objectives in enumerate(points):
        archive.offer(
            FrontPoint(
                name=f"p{i}",
                spec="BIM1",
                params=(),
                origin="test",
                mean_mpki=objectives[0],
                area_um2=objectives[1],
                predict_latency=int(objectives[2]),
                storage_kib=0.0,
                mean_accuracy=0.0,
            )
        )
    got = sorted(p.objectives for p in archive.front())
    want = sorted(non_dominated(points))
    assert got == want
    # Duplicate-free and mutually non-dominated.
    assert len(got) == len(set(got))
    front = archive.front()
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a.objectives, b.objectives)


def test_dominance_relation():
    assert dominates((1.0, 2.0), (1.0, 3.0))
    assert not dominates((1.0, 3.0), (1.0, 2.0))
    assert not dominates((1.0, 2.0), (1.0, 2.0))  # equal: not strict
    assert not dominates((0.5, 3.0), (1.0, 2.0))  # trade-off


def test_halving_schedule_shape():
    workloads = ("a", "b", "c", "d", "e")
    schedule = build_schedule(workloads, rungs=3)
    assert schedule[-1] == workloads
    sizes = [len(rung) for rung in schedule]
    assert sizes == sorted(sizes) and sizes[0] >= 1
    # Rungs are prefixes of the full suite (cache-friendly supersets).
    for rung in schedule:
        assert rung == workloads[: len(rung)]
    assert promote_count(8, 2) == 4
    assert promote_count(1, 2) == 1
    assert build_schedule(workloads, rungs=1) == [workloads]


# ----------------------------------------------------------------------
# Fuzz oracle and CLI
# ----------------------------------------------------------------------
def test_explore_oracle_clean_on_campaign_cases(tmp_path):
    config = FuzzConfig(seed=0, iterations=8)
    for i in range(8):  # includes the preset-topology cadence
        case = case_for_iteration(config, i)
        mismatches = run_oracle("explore", case, tmp_path)
        assert mismatches == [], [m.format() for m in mismatches]


def test_cli_explore_writes_artifact(tmp_path, capsys):
    out = tmp_path / "pareto.json"
    code = cli_main(
        [
            "explore",
            "--seed",
            "3",
            "--generations",
            "1",
            "--population",
            "4",
            "--workloads",
            "biased",
            "dispatch",
            "--scale",
            "0.15",
            "--max-instructions",
            "2000",
            "--rungs",
            "2",
            "--cache",
            str(tmp_path / "cache"),
            "--out",
            str(out),
        ]
    )
    assert code == 0
    payload = load_artifact(out)
    assert payload["schema"] == 1
    assert payload["front"], "front must be non-empty"
    assert payload["provenance"]["seed"] == 3
    text = capsys.readouterr().out
    assert "Pareto front" in text and "provenance:" in text


def test_random_candidate_is_parseable():
    rng = random.Random("explore-test-random")
    for _ in range(20):
        candidate = random_candidate(rng)
        described = candidate.build().describe()
        rebuilt = Candidate(spec=described, params=candidate.params)
        assert rebuilt.build().describe() == described
