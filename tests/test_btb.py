"""Tests for the BTB and micro-BTB."""

from repro.components.btb import BTB, MicroBTB
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.prediction import PredictionVector


def lookup(btb, pc=0, width=4):
    base = PredictionVector.fallthrough(pc, width)
    return btb.lookup(PredictRequest(pc, width), [base])


def taken_update(btb, pc, cfi_idx, target, meta, is_jump=False, width=4):
    btb.on_update(
        UpdateBundle(
            fetch_pc=pc,
            width=width,
            meta=meta,
            br_mask=tuple(
                i == cfi_idx and not is_jump for i in range(width)
            ),
            taken_mask=tuple(i == cfi_idx and not is_jump for i in range(width)),
            cfi_idx=cfi_idx,
            cfi_taken=True,
            cfi_target=target,
            cfi_is_br=not is_jump,
            cfi_is_jal=is_jump,
        )
    )


class TestBTB:
    def test_miss_passes_through(self):
        btb = BTB("btb", n_sets=16, n_ways=2)
        out, meta = lookup(btb)
        assert not any(s.hit for s in out.slots)
        assert btb._codec.unpack(meta)["hit"] == 0

    def test_learns_taken_branch_target(self):
        btb = BTB("btb", n_sets=16, n_ways=2)
        _, meta = lookup(btb, 0)
        taken_update(btb, 0, 1, 77, meta)
        out, meta2 = lookup(btb, 0)
        assert out.slots[1].is_branch
        assert out.slots[1].target == 77
        assert btb._codec.unpack(meta2)["hit"] == 1

    def test_btb_branch_direction_defaults_not_taken(self):
        """A bare BTB hit provides target, not direction (Fig. 3)."""
        btb = BTB("btb", n_sets=16, n_ways=2)
        _, meta = lookup(btb, 0)
        taken_update(btb, 0, 0, 50, meta)
        out, _ = lookup(btb, 0)
        assert out.slots[0].is_branch and not out.slots[0].taken

    def test_direction_from_predict_in_preserved(self):
        btb = BTB("btb", n_sets=16, n_ways=2)
        _, meta = lookup(btb, 0)
        taken_update(btb, 0, 0, 50, meta)
        base = PredictionVector.fallthrough(0, 4)
        base.slots[0].hit = True
        base.slots[0].taken = True
        out, _ = btb.lookup(PredictRequest(0, 4), [base])
        assert out.slots[0].taken and out.slots[0].target == 50

    def test_jump_slots_predict_taken(self):
        btb = BTB("btb", n_sets=16, n_ways=2)
        _, meta = lookup(btb, 0)
        taken_update(btb, 0, 2, 99, meta, is_jump=True)
        out, _ = lookup(btb, 0)
        assert out.slots[2].is_jump and out.slots[2].taken
        assert out.slots[2].target == 99

    def test_multiple_cfis_per_packet(self):
        """Superscalar entries hold several slots of the same packet."""
        btb = BTB("btb", n_sets=16, n_ways=2)
        _, meta = lookup(btb, 0)
        taken_update(btb, 0, 0, 40, meta)
        _, meta = lookup(btb, 0)
        taken_update(btb, 0, 3, 80, meta)
        out, _ = lookup(btb, 0)
        assert out.slots[0].target == 40
        assert out.slots[3].target == 80

    def test_way_replacement_round_robin(self):
        btb = BTB("btb", n_sets=1, n_ways=2)
        # Three distinct packet tags into a single set of two ways.
        for base_pc, target in ((0, 10), (64, 20), (128, 30)):
            _, meta = lookup(btb, base_pc)
            taken_update(btb, base_pc, 0, target, meta)
        hits = []
        for base_pc in (0, 64, 128):
            out, _ = lookup(btb, base_pc)
            hits.append(out.slots[0].hit)
        assert hits.count(True) == 2  # oldest got evicted

    def test_not_taken_packet_does_not_allocate(self):
        btb = BTB("btb", n_sets=16, n_ways=2)
        _, meta = lookup(btb, 0)
        btb.on_update(
            UpdateBundle(
                fetch_pc=0, width=4, meta=meta,
                br_mask=(True, False, False, False),
                taken_mask=(False, False, False, False),
                cfi_idx=None, cfi_taken=False, cfi_target=None,
            )
        )
        out, _ = lookup(btb, 0)
        assert not any(s.hit for s in out.slots)

    def test_storage_counts_targets(self):
        btb = BTB("btb", n_sets=16, n_ways=2)
        report = btb.storage()
        assert report.breakdown["targets"] > report.breakdown["tags"]
        assert btb.provides_targets


class TestMicroBTB:
    def test_single_cycle_no_history(self):
        ubtb = MicroBTB("ubtb")
        assert ubtb.latency == 1
        assert not ubtb.uses_global_history

    def test_learns_and_redirects(self):
        ubtb = MicroBTB("ubtb", n_entries=4)
        _, meta = lookup(ubtb, 0)
        taken_update(ubtb, 0, 1, 33, meta)
        out, _ = lookup(ubtb, 0)
        assert out.slots[1].is_branch and out.slots[1].taken
        assert out.slots[1].target == 33

    def test_counter_trains_down_on_not_taken(self):
        ubtb = MicroBTB("ubtb", n_entries=4)
        _, meta = lookup(ubtb, 0)
        taken_update(ubtb, 0, 1, 33, meta)
        # Twice not-taken: counter 3 -> 2 -> 1 -> predicts not taken.
        for _ in range(2):
            _, meta = lookup(ubtb, 0)
            ubtb.on_update(
                UpdateBundle(
                    fetch_pc=0, width=4, meta=meta,
                    br_mask=(False, True, False, False),
                    taken_mask=(False, False, False, False),
                    cfi_idx=None, cfi_taken=False, cfi_target=None,
                )
            )
        out, _ = lookup(ubtb, 0)
        assert out.slots[1].is_branch and not out.slots[1].taken

    def test_fifo_replacement(self):
        ubtb = MicroBTB("ubtb", n_entries=2)
        for base_pc, target in ((0, 10), (4, 20), (8, 30)):
            _, meta = lookup(ubtb, base_pc)
            taken_update(ubtb, base_pc, 0, target, meta)
        out, _ = lookup(ubtb, 0)
        assert not out.slots[0].hit  # oldest evicted
        out, _ = lookup(ubtb, 8)
        assert out.slots[0].hit

    def test_flop_storage(self):
        report = MicroBTB("ubtb", n_entries=32).storage()
        assert report.sram_bits == 0 and report.flop_bits > 0
