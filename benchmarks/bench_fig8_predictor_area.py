"""E4 — Fig. 8: predictor area broken down across sub-components.

Paper shapes under test: the TAGE-L pipeline is the largest; tagged
structures (TAGE tables, BTB) dominate untagged counter tables; the
generated management structures ("Meta": history file + history providers)
incur non-trivial cost, largest for the Tournament design whose local
history provider generates a PC-indexed history table.
"""

from repro import presets
from repro.synthesis import AreaModel, format_breakdown


def build_report() -> str:
    model = AreaModel()
    sections = []
    breakdowns = {}
    for name, label in (("tourney", "Tournament"), ("b2", "B2"), ("tage_l", "TAGE-L")):
        predictor = presets.build(name)
        breakdown = model.predictor_breakdown(predictor)
        breakdowns[name] = breakdown
        sections.append(f"{label} ({predictor.describe()}):")
        sections.append(format_breakdown(breakdown))
        sections.append("")
    return "\n".join(sections), breakdowns


def test_fig8_predictor_area(benchmark, report):
    text, breakdowns = benchmark(build_report)
    report("fig8_predictor_area", text)

    model = AreaModel()
    totals = {n: sum(b.values()) for n, b in breakdowns.items()}
    # TAGE-L is the largest pipeline.
    assert totals["tage_l"] > totals["b2"]
    assert totals["tage_l"] > totals["tourney"]
    # Tagged structures cost more than the untagged bimodal of equal role.
    assert breakdowns["tage_l"]["tage"] > breakdowns["tage_l"]["bim"]
    # Meta is non-trivial everywhere and largest for Tournament (local
    # history provider).
    for name in breakdowns:
        assert breakdowns[name]["meta"] > 0
    assert breakdowns["tourney"]["meta"] > breakdowns["b2"]["meta"]
