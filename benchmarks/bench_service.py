"""Load benchmark for the evaluation service (``repro serve``).

Starts a real in-process :class:`EvalService` (spawned worker processes,
fresh result cache) and drives it with an asyncio load generator — N
concurrent clients, each a full HTTP round trip per request — through
three phases:

1. **cold** — every spec is novel: jobs execute on the worker pool.
2. **warm** — the identical spec set resubmitted: every job must be served
   from the result cache without touching a worker, and the mean warm
   round trip must be >= 50x faster than the mean cold one.
3. **dedup** — many concurrent submissions of one novel spec: the service
   must coalesce them onto a single execution.

The acceptance asserts run in the full configuration only; ``--quick``
(CI smoke) keeps the phases but relaxes nothing is asserted beyond
correct dedup/warm-hit *behavior*, so a slow shared runner cannot flake
the ratio check.

Run directly (``python benchmarks/bench_service.py [--quick]``) or via
pytest.  Results land in ``benchmarks/results/service.json|txt``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import EvalService, ServiceConfig  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

FULL_PREDICTORS = ["b2", "tage_l", "tourney"]
FULL_WORKLOADS = ["pattern_long", "dispatch", "biased"]
QUICK_PREDICTORS = ["b2"]
QUICK_WORKLOADS = ["biased", "dispatch"]


def _specs(quick: bool):
    predictors = QUICK_PREDICTORS if quick else FULL_PREDICTORS
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    max_instructions = 20_000 if quick else 150_000
    return [
        {
            "predictor": predictor,
            "workload": workload,
            "backend": "trace",
            "scale": 0.4,
            "max_instructions": max_instructions,
        }
        for predictor in predictors
        for workload in workloads
    ]


async def _submit_and_wait(client: ServiceClient, spec) -> dict:
    """One client: submit, long-poll to terminal, return timing + view."""
    t0 = time.perf_counter()
    view = await client.submit(spec)
    if view["state"] not in ("done", "failed"):
        view = await client.wait_job(view["id"], timeout=600.0)
    elapsed = time.perf_counter() - t0
    if view["state"] != "done":
        raise RuntimeError(f"job failed: {view.get('error')}")
    return {"seconds": elapsed, "view": view}


async def _phase(client: ServiceClient, specs, clients: int) -> dict:
    """Run one phase: `clients` concurrent submitters draining `specs`."""
    queue: asyncio.Queue = asyncio.Queue()
    for spec in specs:
        queue.put_nowait(spec)
    outcomes = []

    async def submitter():
        while True:
            try:
                spec = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            outcomes.append(await _submit_and_wait(client, spec))

    t0 = time.perf_counter()
    await asyncio.gather(*(submitter() for _ in range(clients)))
    wall = time.perf_counter() - t0
    latencies = sorted(o["seconds"] for o in outcomes)
    return {
        "jobs": len(outcomes),
        "wall_seconds": wall,
        "throughput_jobs_per_s": len(outcomes) / wall if wall else None,
        "latency_mean_s": statistics.mean(latencies),
        "latency_p50_s": latencies[len(latencies) // 2],
        "latency_max_s": latencies[-1],
        "cache_hits": sum(1 for o in outcomes if o["view"]["cache_hit"]),
        "coalesced": sum(1 for o in outcomes if o["view"]["coalesced"]),
        "outcomes": outcomes,
    }


async def _run(quick: bool, clients: int, copies: int) -> dict:
    specs = _specs(quick)
    dedup_spec = {**specs[0], "max_instructions": 400_000, "scale": 0.5}
    with tempfile.TemporaryDirectory() as tmp:
        service = EvalService(
            ServiceConfig(
                port=0, workers=2, cache_dir=str(Path(tmp) / "cache"), quiet=True
            )
        )
        serve_task = asyncio.create_task(service.serve())
        while service._server is None:
            await asyncio.sleep(0.01)
        port = service._server.sockets[0].getsockname()[1]
        client = ServiceClient(port=port, timeout=600.0)

        cold = await _phase(client, specs, clients)
        warm = await _phase(client, specs, clients)

        # Dedup: `copies` concurrent submissions of one novel (heavy) spec.
        before = (await client.metrics())["executions"]
        dedup = await _phase(client, [dedup_spec] * copies, copies)
        executions = (await client.metrics())["executions"] - before

        metrics = await client.metrics()
        service.request_shutdown()
        exit_code = await serve_task

    for phase in (cold, warm, dedup):
        phase.pop("outcomes")
    return {
        "quick": quick,
        "clients": clients,
        "spec_count": len(specs),
        "dedup_copies": copies,
        "phases": {"cold": cold, "warm": warm, "dedup": dedup},
        "dedup_executions": executions,
        "warm_speedup": cold["latency_mean_s"] / warm["latency_mean_s"],
        "serve_exit_code": exit_code,
        "metrics": metrics,
    }


def _render(report: dict) -> str:
    phases = report["phases"]
    lines = [
        f"service load benchmark: {report['spec_count']} specs, "
        f"{report['clients']} concurrent clients, workers=2, trace backend",
        "",
        f"{'phase':8s} {'jobs':>5s} {'wall (s)':>9s} {'jobs/s':>8s} "
        f"{'mean (ms)':>10s} {'p50 (ms)':>9s} {'max (ms)':>9s} "
        f"{'hits':>5s} {'coal':>5s}",
        "-" * 75,
    ]
    for name in ("cold", "warm", "dedup"):
        p = phases[name]
        lines.append(
            f"{name:8s} {p['jobs']:5d} {p['wall_seconds']:9.3f} "
            f"{p['throughput_jobs_per_s']:8.1f} "
            f"{p['latency_mean_s'] * 1000:10.2f} "
            f"{p['latency_p50_s'] * 1000:9.2f} "
            f"{p['latency_max_s'] * 1000:9.2f} "
            f"{p['cache_hits']:5d} {p['coalesced']:5d}"
        )
    m = report["metrics"]
    lines += [
        "",
        f"warm speedup: {report['warm_speedup']:.1f}x "
        f"(mean cold / mean warm round trip; target >= 50x)",
        f"dedup: {report['dedup_copies']} concurrent identical submissions "
        f"-> {report['dedup_executions']} execution(s), "
        f"{phases['dedup']['coalesced']} coalesced",
        f"server counters: executions={m['executions']} "
        f"cache_hits={m['cache_hits']} dedup_coalesced={m['dedup_coalesced']} "
        f"shed={m['jobs_shed']} worker_restarts={m['worker_restarts']}",
        f"clean drain on shutdown: exit code {report['serve_exit_code']}",
    ]
    return "\n".join(lines)


def run_benchmark(quick: bool = False, clients: int = 8, copies: int = 8):
    report = asyncio.run(_run(quick, clients, copies))
    # Behavior must hold at any speed; the latency ratio only on the
    # full configuration (quick CI runners are too noisy to gate on it).
    assert report["serve_exit_code"] == 0
    assert report["phases"]["warm"]["cache_hits"] == report["spec_count"], (
        "warm phase was not served entirely from cache"
    )
    assert report["dedup_executions"] == 1, (
        f"{report['dedup_copies']} identical submissions took "
        f"{report['dedup_executions']} executions, expected 1"
    )
    assert report["phases"]["dedup"]["coalesced"] == copies - 1
    if not quick:
        assert report["warm_speedup"] >= 50.0, (
            f"warm hits only {report['warm_speedup']:.1f}x faster than cold "
            f"(target >= 50x)"
        )
    return report


def test_service_load(report):
    outcome = run_benchmark(quick=False)
    (RESULTS_DIR / "service.json").write_text(
        json.dumps(outcome, indent=2, sort_keys=True) + "\n"
    )
    report("service", _render(outcome))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small suite, behavioral asserts only (CI smoke)",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--copies", type=int, default=8)
    parser.add_argument(
        "--no-write", action="store_true", help="print only, skip results/"
    )
    args = parser.parse_args()
    outcome = run_benchmark(
        quick=args.quick, clients=args.clients, copies=args.copies
    )
    text = _render(outcome)
    print(text)
    if not args.quick and not args.no_write:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "service.txt").write_text(text + "\n")
        (RESULTS_DIR / "service.json").write_text(
            json.dumps(outcome, indent=2, sort_keys=True) + "\n"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
