"""Ablation A5: the accuracy/area Pareto frontier across design points.

The composer's value proposition (Fig. 1) is cheap design iteration; this
bench runs eight design points — the paper's three plus five variants the
notation makes one-liners — over a workload pair and reports the Pareto
frontier on (mean accuracy, predictor area).

Shape under test: the paper's three designs are all on or near the
frontier (each is the best at its size class), and accuracy is monotone in
area along the frontier by construction.
"""

import pytest

from repro import presets
from repro.components.library import standard_library
from repro.core import ComposerConfig, compose
from repro.eval import evaluate_designs, format_points, pareto_frontier
from repro.workloads import build_specint


def _custom(topology, ghist=64, **libkw):
    def factory():
        library = standard_library(global_history_bits=ghist, **libkw)
        return compose(topology, library, ComposerConfig(global_history_bits=ghist))

    return factory


DESIGNS = {
    "bimodal": _custom("BTB2 > BIM2", ghist=16),
    "gshare": _custom("GSHARE2 > BTB2", ghist=32),
    "tourney": lambda: presets.build("tourney"),
    "b2": lambda: presets.build("b2"),
    "tage-small": lambda: presets.build("tage_l", tage_sets=256),
    "tage_l": lambda: presets.build("tage_l"),
    "tage-xl": lambda: presets.build("tage_l", tage_sets=2048),
    "perceptron": _custom("PERC3 > BTB2 > BIM2", ghist=64),
}


@pytest.fixture(scope="module")
def sweep_points(scale):
    programs = {
        name: build_specint(name, scale=min(scale, 0.3))
        for name in ("gcc", "xz")
    }
    return evaluate_designs(DESIGNS, programs)


def test_pareto_designs(benchmark, report, sweep_points):
    points = benchmark.pedantic(lambda: sweep_points, iterations=1, rounds=1)
    frontier = pareto_frontier(points)
    text = (
        "all design points:\n" + format_points(points)
        + "\n\nPareto frontier (accuracy vs area):\n" + format_points(frontier)
    )
    report("pareto_designs", text)

    frontier_names = {p.name for p in frontier}
    by_name = {p.name: p for p in points}
    # The TAGE-class designs anchor the high-accuracy end of the frontier.
    best = max(points, key=lambda p: p.mean_accuracy)
    assert best.name in ("tage_l", "tage-xl", "tage-small")
    # The frontier is monotone: accuracy increases with area along it.
    accs = [p.mean_accuracy for p in frontier]
    assert accs == sorted(accs)
    # A cheap design anchors the low end.
    assert min(points, key=lambda p: p.area_um2).name in frontier_names
