"""E10 — §I: serializing the fetch unit behind branch predictions.

Paper: "We measured that serializing the fetch unit behind branch
predictions in a 4-wide fetch BOOM core decreased IPC by 15% in the
Dhrystone synthetic benchmark."

Shape under test: cutting every fetch packet at its first control-flow
instruction costs double-digit-percent IPC on the Dhrystone-like workload.
"""

import pytest

from repro import presets
from repro.eval import run_workload
from repro.workloads import build_dhrystone


@pytest.fixture(scope="module")
def serialization_results(scale):
    program = build_dhrystone(scale=scale)
    normal = run_workload(presets.build("tage_l"), program,
                          system_name="superscalar")
    serial = run_workload(presets.build("tage_l", serialize_cfi=True), program,
                          system_name="serialized")
    return normal, serial


def test_intro_serial_fetch(benchmark, report, serialization_results):
    normal, serial = benchmark.pedantic(
        lambda: serialization_results, iterations=1, rounds=1
    )
    loss = 100 * (1 - serial.ipc / normal.ipc)
    lines = [
        f"superscalar prediction: IPC {normal.ipc:.2f}",
        f"serialized at branches: IPC {serial.ipc:.2f}",
        f"IPC decrease: {loss:.1f}%   (paper: 15% on Dhrystone)",
    ]
    report("intro_serial_fetch", "\n".join(lines))
    assert loss > 5.0
