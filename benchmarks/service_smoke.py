"""CI smoke test for the evaluation service (the `service-smoke` job).

Exercises the service exactly the way an operator would — real
subprocesses, real signals, the shipped CLI — and asserts the three
properties the service exists to provide:

1. **Dedup + warm hits**: a duplicate batch submitted via ``repro submit
   --copies 2`` coalesces onto one execution, and resubmitting the same
   specs is served entirely from the result cache.
2. **Worker-death robustness**: SIGKILLing a worker mid-job restarts the
   pool and the job still completes (bounded retry, ``worker_restarts``
   counted).
3. **Graceful drain**: SIGTERM exits 0 with a drain message and no
   abandoned jobs.

Everything observed (submit JSON, metrics snapshots, the server log) is
written to ``--out-dir`` so CI can upload it as an artifact.

Usage: ``python benchmarks/service_smoke.py [--out-dir service-artifacts]``
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.client import ServiceClient  # noqa: E402

CHECKS = []


def check(name: str, condition: bool, detail: str = "") -> None:
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {name}" + (f" ({detail})" if detail else ""), flush=True)
    CHECKS.append({"name": name, "ok": bool(condition), "detail": detail})
    if not condition:
        raise SystemExit(f"smoke check failed: {name} {detail}")


def wait_for_port_file(path: Path, process, timeout: float = 60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(
                f"server exited early with code {process.returncode}"
            )
        if path.is_file() and path.read_text().strip():
            return int(path.read_text().strip())
        time.sleep(0.05)
    raise SystemExit(f"server did not write {path} within {timeout}s")


def run_submit(port_file: Path, *extra: str) -> dict:
    command = [
        sys.executable, "-m", "repro", "submit",
        "--port-file", str(port_file),
        "--predictors", "b2",
        "--workloads", "biased", "dispatch",
        "--backend", "trace",
        "--max-instructions", "20000",
        "--json",
        *extra,
    ]
    completed = subprocess.run(
        command, capture_output=True, text=True, timeout=300
    )
    if completed.returncode != 0:
        raise SystemExit(
            f"repro submit failed ({completed.returncode}):\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    return json.loads(completed.stdout)


async def kill_worker_leg(port: int) -> dict:
    """Submit a long job, SIGKILL the worker running it, assert recovery."""
    client = ServiceClient(port=port, timeout=120.0)
    spec = {
        "predictor": "tage_l",
        "workload": "pattern_long",
        "backend": "trace",
        "max_instructions": 800_000,
    }
    view = await client.submit(spec)
    job_id = view["id"]
    deadline = time.monotonic() + 60.0
    while (await client.job(job_id))["state"] == "queued":
        if time.monotonic() > deadline:
            raise SystemExit("job never started running")
        await asyncio.sleep(0.02)
    pids = (await client.healthz())["worker_pids"]
    check("workers alive before kill", len(pids) >= 1, f"pids={pids}")
    os.kill(pids[0], signal.SIGKILL)
    print(f"killed worker {pids[0]} mid-job", flush=True)
    final = await client.wait_job(job_id, timeout=120.0)
    metrics = await client.metrics()
    health = await client.healthz()
    check("job survived worker death", final["state"] == "done",
          f"attempts={final['attempts']}")
    check("pool restarted", metrics["worker_restarts"] >= 1,
          f"restarts={metrics['worker_restarts']} "
          f"generation={health['worker_generation']}")
    return {"final": final, "metrics": metrics, "healthz": health}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="service-artifacts")
    args = parser.parse_args()
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    artifacts: dict = {}

    with tempfile.TemporaryDirectory() as tmp:
        port_file = Path(tmp) / "port.txt"
        server_log = open(out_dir / "serve.log", "w")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--port-file", str(port_file),
                "--workers", "2",
                "--cache", str(Path(tmp) / "cache"),
            ],
            stdout=server_log,
            stderr=subprocess.STDOUT,
        )
        try:
            port = wait_for_port_file(port_file, server)
            print(f"server up on port {port} (pid {server.pid})", flush=True)

            # Leg 1: duplicate batch -> coalesced, one execution per cell.
            first = run_submit(port_file, "--copies", "2")
            artifacts["submit_duplicates"] = first
            jobs = first["jobs"]
            coalesced = sum(1 for j in jobs if j["coalesced"])
            check("duplicate submissions coalesced",
                  coalesced == len(jobs) // 2,
                  f"{coalesced}/{len(jobs)} coalesced")
            check("all batch jobs completed",
                  all(j["state"] == "done" for j in jobs))
            check("one execution per distinct spec",
                  first["metrics"]["executions"] == len(jobs) // 2,
                  f"executions={first['metrics']['executions']}")

            # Leg 2: identical resubmission -> pure warm cache hits.
            second = run_submit(port_file)
            artifacts["submit_warm"] = second
            check("resubmission served from cache",
                  all(j["cache_hit"] for j in second["jobs"]),
                  f"hit_rate={second['metrics']['cache_hit_rate']:.2f}")
            check("warm hits executed nothing new",
                  second["metrics"]["executions"]
                  == first["metrics"]["executions"])

            # Leg 3: kill a worker mid-job; the job must still complete.
            artifacts["worker_kill"] = asyncio.run(kill_worker_leg(port))

            # Leg 4: SIGTERM -> graceful drain, exit 0.
            server.send_signal(signal.SIGTERM)
            code = server.wait(timeout=60)
            check("SIGTERM drained cleanly", code == 0, f"exit={code}")
        finally:
            if server.poll() is None:
                server.kill()
            server_log.close()

    log_text = (out_dir / "serve.log").read_text()
    check("drain logged", "drain complete" in log_text)
    artifacts["checks"] = CHECKS
    (out_dir / "service_smoke.json").write_text(
        json.dumps(artifacts, indent=2, sort_keys=True) + "\n"
    )
    print(f"smoke artifacts in {out_dir}/", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
