"""E7 — §VI-A: pipelining TAGE from 2 to 3 cycles.

Paper: "Delaying the TAGE response had no impact on overall prediction
accuracy, and a minimal (~1%) degradation of IPC", because not all branches
are hard, and decode backpressure hides temporary fetch stalls.

Shape under test: accuracy essentially unchanged; IPC cost small (well
under the cost of, say, halving the predictor).
"""

import pytest

from repro import presets
from repro.eval import harmonic_mean, run_workload
from repro.workloads import build_specint

BENCHES = ("perlbench", "x264", "xz", "exchange2")


@pytest.fixture(scope="module")
def latency_results(scale):
    results = {}
    for bench in BENCHES:
        program = build_specint(bench, scale=scale)
        results[bench] = {
            lat: run_workload(
                presets.build("tage_l", tage_latency=lat),
                program,
                system_name=f"TAGE@{lat}",
            )
            for lat in (2, 3)
        }
    return results


def test_sec6a_tage_latency(benchmark, report, latency_results):
    results = benchmark.pedantic(lambda: latency_results, iterations=1, rounds=1)
    lines = [f"{'bench':12s} {'IPC@2':>7s} {'IPC@3':>7s} {'dIPC':>7s} "
             f"{'acc@2':>7s} {'acc@3':>7s}"]
    for bench, by_lat in results.items():
        fast, slow = by_lat[2], by_lat[3]
        d_ipc = 100 * (slow.ipc / fast.ipc - 1)
        lines.append(
            f"{bench:12s} {fast.ipc:7.2f} {slow.ipc:7.2f} {d_ipc:+6.1f}% "
            f"{fast.branch_accuracy * 100:6.1f}% {slow.branch_accuracy * 100:6.1f}%"
        )
    mean2 = harmonic_mean([r[2].ipc for r in results.values()])
    mean3 = harmonic_mean([r[3].ipc for r in results.values()])
    lines.append(f"{'HARMEAN':12s} {mean2:7.2f} {mean3:7.2f} "
                 f"{100 * (mean3 / mean2 - 1):+6.1f}%")
    report("sec6a_tage_latency", "\n".join(lines))

    # Accuracy unchanged (within noise); IPC cost small.
    for bench, by_lat in results.items():
        assert abs(by_lat[2].branch_accuracy - by_lat[3].branch_accuracy) < 0.02
    assert mean3 >= 0.9 * mean2
