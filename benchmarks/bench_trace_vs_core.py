"""E12 (motivation, §II-B): trace-driven simulation vs. the speculative core.

The paper's premise is that software trace simulators "cannot model
microarchitectural behaviors like speculation and superscalar execution"
and mismeasure predictor accuracy.  Because this repository implements both
methodologies over the *same* predictor pipelines, the modelling gap is
directly measurable: run each workload through the trace simulator and
through the full speculative core and compare accuracies.

Shape under test: a nonzero gap exists on workloads with mispredictions
(the trace simulator, blind to wrong-path history corruption and repair
latency, reports different — typically higher — accuracy).
"""

import pytest

from repro import presets
from repro.eval import run_workload, trace_accuracy
from repro.workloads import build_specint

BENCHES = ("perlbench", "omnetpp", "xz")


@pytest.fixture(scope="module")
def gap_results(scale):
    rows = {}
    for bench in BENCHES:
        program = build_specint(bench, scale=scale)
        trace = trace_accuracy(presets.build("tage_l"), program)
        core = run_workload("tage_l", program)
        rows[bench] = (trace, core)
    return rows


def test_trace_vs_core(benchmark, report, gap_results):
    rows = benchmark.pedantic(lambda: gap_results, iterations=1, rounds=1)
    lines = [
        f"{'bench':12s} {'trace acc':>10s} {'core acc':>10s} {'gap (pp)':>9s} "
        f"{'trace MPKI':>11s} {'core MPKI':>10s}"
    ]
    gaps = []
    for bench, (trace, core) in rows.items():
        gap = (trace.accuracy - core.branch_accuracy) * 100
        gaps.append(gap)
        lines.append(
            f"{bench:12s} {trace.accuracy * 100:9.2f}% "
            f"{core.branch_accuracy * 100:9.2f}% {gap:+8.2f} "
            f"{trace.mpki:11.2f} {core.mpki:10.2f}"
        )
    report("trace_vs_core_modeling_gap", "\n".join(lines))
    # A modelling gap exists somewhere in the suite.
    assert any(abs(g) > 0.05 for g in gaps)
    # But the two methodologies agree on the big picture (same predictor!).
    for bench, (trace, core) in rows.items():
        assert abs(trace.accuracy - core.branch_accuracy) < 0.15
