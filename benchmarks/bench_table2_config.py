"""E2 — Table II: the evaluated BOOM configuration.

Renders the host-core model's configuration next to the paper's, marking
which rows are modelled, which are substituted, and which are out of scope
(documented in DESIGN.md).
"""

from repro.frontend import CoreConfig


def build_table() -> str:
    config = CoreConfig()
    cache = config.cache
    l1_kib = cache.l1_sets * cache.l1_ways * cache.line_words * 8 // 1024
    l2_kib = cache.l2_sets * cache.l2_ways * cache.line_words * 8 // 1024
    rows = [
        ("Frontend", "16-byte (4-instr) fetch",
         f"{config.fetch_width}-instr fetch packets", "modelled"),
        ("", "4-wide decode/rename/commit",
         f"{config.decode_width}-wide decode, {config.commit_width}-wide commit",
         "modelled"),
        ("Execute", "128-entry ROB", f"{config.rob_entries}-entry ROB", "modelled"),
        ("", "8 pipelines (4 ALU, 2 MEM, 2 FP)",
         "dependency-driven completion (idealized issue)", "substituted"),
        ("", "3x 32-entry IQs", "(folded into issue model)", "substituted"),
        ("LSU", "32-entry LDQ/STQ, 2 LD or 1 ST/cycle",
         "loads via cache model; no queue caps", "substituted"),
        ("TLBs", "32/32-entry L1, 1024-entry L2",
         "not modelled (no prediction interaction)", "out of scope"),
        ("L1 caches", "8-way 32 KB I and D",
         f"{cache.l1_ways}-way {l1_kib} KB D-cache; ideal I-cache", "modelled/ideal"),
        ("L2 cache", "8-way 512 KB", f"{cache.l2_ways}-way {l2_kib} KB", "modelled"),
        ("L3/memory", "4 MB FASED LLC, DDR3 model",
         f"flat {cache.memory_penalty}-cycle memory penalty", "substituted"),
    ]
    lines = [f"{'Block':10s} {'paper (Table II)':36s} {'this model':46s} status",
             "-" * 110]
    for block, paper, ours, status in rows:
        lines.append(f"{block:10s} {paper:36s} {ours:46s} {status}")
    return "\n".join(lines)


def test_table2_config(benchmark, report):
    table = benchmark(build_table)
    report("table2_core_config", table)
    config = CoreConfig()
    assert config.fetch_width == 4
    assert config.decode_width == 4
    assert config.rob_entries == 128
