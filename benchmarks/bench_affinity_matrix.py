"""Ablation A7: the predictor-affinity matrix (§II-A).

"A collection of predictors with affinities for different branch behaviors
can be more accurate and efficient than a single generic predictor" — the
premise behind hybrid designs.  This bench runs five predictor classes over
ten isolated branch-behaviour micro-workloads, producing the accuracy
matrix that premise implies: each simple predictor has behaviour classes it
owns and classes it fails, while the TAGE-L composition covers them all.
"""

import pytest

from repro import presets
from repro.components.library import standard_library
from repro.core import ComposerConfig, compose
from repro.eval import run_workload
from repro.synthesis.report import format_matrix
from repro.workloads.micro import MICRO_NAMES, build_micro


def _simple(topology, ghist=32):
    def factory():
        return compose(
            topology,
            standard_library(global_history_bits=ghist),
            ComposerConfig(global_history_bits=ghist),
        )

    return factory


SYSTEMS = {
    "bimodal": _simple("BTB2 > BIM2"),
    "gshare": _simple("GSHARE2 > BTB2", ghist=24),
    "two-level-PAg": _simple("PAG3 > BTB2 > BIM2"),
    "loop+bim": _simple("LOOP3 > BTB2 > BIM2"),
    "tage_l": lambda: presets.build("tage_l"),
}


@pytest.fixture(scope="module")
def affinity(scale):
    matrix = {}
    for system, factory in SYSTEMS.items():
        matrix[system] = {}
        for micro in MICRO_NAMES:
            program = build_micro(micro, scale=min(scale, 0.4))
            result = run_workload(factory(), program, system_name=system)
            matrix[system][micro] = result.branch_accuracy * 100
    return matrix


def test_affinity_matrix(benchmark, report, affinity):
    matrix = benchmark.pedantic(lambda: affinity, iterations=1, rounds=1)
    text = "branch-direction accuracy (%) per behaviour class:\n" + format_matrix(
        matrix, value_format="{:7.1f}", col_width=10
    )
    report("affinity_matrix", text)

    # Everyone handles the steady loop.
    for system in matrix:
        assert matrix[system]["steady_loop"] > 95.0
    # History predictors own patterns; bimodal does not.
    assert (
        matrix["two-level-PAg"]["pattern_short"]
        > matrix["bimodal"]["pattern_short"] + 5
    )
    assert matrix["gshare"]["pattern_long"] > matrix["bimodal"]["pattern_long"] + 15
    # The loop predictor owns counted loops; bimodal mispredicts every exit.
    assert (
        matrix["loop+bim"]["counted_loops"]
        > matrix["bimodal"]["counted_loops"] + 10
    )
    # Nobody beats the coin flip by much.
    for system in matrix:
        assert matrix[system]["random"] < 78.0
    # The composition is never the worst in any class (the hybrid premise),
    # and wins or ties most classes.
    wins = 0
    for micro in MICRO_NAMES:
        worst = min(matrix[system][micro] for system in matrix)
        best = max(matrix[system][micro] for system in matrix)
        assert matrix["tage_l"][micro] >= worst
        if matrix["tage_l"][micro] >= best - 1.0:
            wins += 1
    assert wins >= 5
