"""E8 — §VI-B: repairing the global history with vs. without fetch replay.

Paper: replaying fetch with the corrected history "improved mean IPC by 15%
and reduced the branch mispredict rate by 25% across all SPECint
benchmarks", but on short loop-based benchmarks the extra bubbles hurt
(Dhrystone: -3% IPC).

Shapes under test: replay reduces mispredicts and raises mean IPC on the
SPECint set; on Dhrystone (near-perfect prediction, so replay bubbles are
pure cost) the IPC gain disappears or reverses.
"""

import pytest

from repro import presets
from repro.eval import harmonic_mean, run_workload
from repro.workloads import build_dhrystone, build_specint

BENCHES = ("perlbench", "mcf", "omnetpp", "xz", "leela")


def run_pair(program):
    replay = run_workload(
        presets.build("tage_l", ghist_repair_mode="replay",
                      ghist_repair_bubbles=1),
        program, system_name="replay")
    stale = run_workload(
        presets.build("tage_l", ghist_repair_mode="no_replay",
                      ghist_corruption_window=8),
        program, system_name="no-replay")
    return replay, stale


@pytest.fixture(scope="module")
def repair_results(scale):
    results = {}
    for bench in BENCHES:
        results[bench] = run_pair(build_specint(bench, scale=scale))
    results["dhrystone"] = run_pair(build_dhrystone(scale=scale))
    return results


def test_sec6b_ghist_repair(benchmark, report, repair_results):
    results = benchmark.pedantic(lambda: repair_results, iterations=1, rounds=1)
    lines = [f"{'bench':12s} {'IPC(replay)':>12s} {'IPC(stale)':>11s} "
             f"{'dIPC':>7s} {'miss(replay)':>13s} {'miss(stale)':>12s}"]
    for bench, (replay, stale) in results.items():
        d_ipc = 100 * (replay.ipc / stale.ipc - 1)
        lines.append(
            f"{bench:12s} {replay.ipc:12.2f} {stale.ipc:11.2f} {d_ipc:+6.1f}% "
            f"{replay.branch_mispredicts:13d} {stale.branch_mispredicts:12d}"
        )
    spec = [b for b in results if b != "dhrystone"]
    mean_replay = harmonic_mean([results[b][0].ipc for b in spec])
    mean_stale = harmonic_mean([results[b][1].ipc for b in spec])
    miss_replay = sum(results[b][0].branch_mispredicts for b in spec)
    miss_stale = sum(results[b][1].branch_mispredicts for b in spec)
    lines.append(
        f"{'SPEC MEAN':12s} {mean_replay:12.2f} {mean_stale:11.2f} "
        f"{100 * (mean_replay / mean_stale - 1):+6.1f}%  "
        f"mispredict reduction {100 * (1 - miss_replay / miss_stale):.1f}%"
    )
    report("sec6b_ghist_repair", "\n".join(lines))

    # Replay substantially reduces mispredicts on the SPEC set (paper: 25%).
    assert miss_replay < 0.85 * miss_stale
    # ...and improves mean IPC (paper: +15%; our simulator's flush costs are
    # shallower, so the gain is smaller but must be positive).
    assert mean_replay > mean_stale
    # On Dhrystone prediction is near-perfect, so replay's bubbles buy
    # little: its IPC advantage there is smaller than the SPEC mean gain.
    dhry_replay, dhry_stale = results["dhrystone"]
    dhry_gain = dhry_replay.ipc / dhry_stale.ipc
    spec_gain = mean_replay / mean_stale
    assert dhry_gain <= spec_gain + 0.01
