"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table or figure from the paper
(see the experiment index in DESIGN.md).  Benchmarks print their rows and
also write them under ``benchmarks/results/`` so EXPERIMENTS.md can cite a
concrete artifact.

Scaling: workload sizes are multiplied by the ``REPRO_BENCH_SCALE``
environment variable (default 0.4).  The paper runs trillions of cycles on
FPGAs; these benches target minutes on a laptop while preserving the
comparative shapes.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def report():
    """Write a named result artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====")
        print(text)
        return path

    return _write
