"""Ablation A1: predictor accuracy vs. storage budget.

§III-D motivates area-efficient memories because "predictor accuracy
improves substantially with storage budget [Michaud et al. 1997]".  This
ablation sweeps the TAGE table size across a 16x range and measures the
accuracy curve — the storage/accuracy trade Figs. 8/10 jointly imply.
"""

import pytest

from repro import presets
from repro.eval import run_workload
from repro.workloads.generators import WorkloadBuilder, emit_correlated, emit_dense_branches

SET_SIZES = (64, 128, 256, 512, 1024)


def capacity_stress_program(scale):
    """Many distinct history-predictable branch sites: the static footprint
    of a large code base, where table capacity decides accuracy."""
    w = WorkloadBuilder("capacity_stress", seed=77)
    for i in range(10):
        w.add(emit_correlated, tag=f"c{i}", n=24, period=4 + (i % 5))
    for i in range(4):
        w.add(emit_dense_branches, tag=f"d{i}", n=16, n_tests=6)
    return w.build(max(2, int(round(10 * scale))))


@pytest.fixture(scope="module")
def storage_sweep(scale):
    program = capacity_stress_program(scale)
    rows = []
    for n_sets in SET_SIZES:
        predictor = presets.build("tage_l", tage_sets=n_sets)
        storage = predictor.direction_storage_kib()
        result = run_workload(predictor, program, system_name=f"tage{n_sets}")
        rows.append((n_sets, storage, result))
    return rows


def test_ablation_storage(benchmark, report, storage_sweep):
    rows = benchmark.pedantic(lambda: storage_sweep, iterations=1, rounds=1)
    lines = [f"{'TAGE sets':>10s} {'storage KiB':>12s} {'MPKI':>7s} {'acc':>7s} {'IPC':>6s}"]
    for n_sets, storage, result in rows:
        lines.append(
            f"{n_sets:10d} {storage:12.1f} {result.mpki:7.1f} "
            f"{result.branch_accuracy * 100:6.1f}% {result.ipc:6.2f}"
        )
    report("ablation_storage_budget", "\n".join(lines))

    accuracies = [result.branch_accuracy for _, _, result in rows]
    # More storage buys real accuracy across the 16x range.
    assert accuracies[-1] > accuracies[0] + 0.002
    # Diminishing returns: the first doubling helps at least as much as
    # the last (within noise).
    first_gain = accuracies[1] - accuracies[0]
    last_gain = accuracies[-1] - accuracies[-2]
    assert first_gain >= last_gain - 0.01
