"""Design-space exploration bench: search vs. enumeration.

``bench_pareto_designs`` enumerates eight hand-picked design points and
reports their frontier; this bench lets `repro explore` *search* the
topology grammar under the same storage discipline and asks whether the
evolved front improves on the hand enumeration's discipline — the
paper's Fig. 1 iteration-speed argument taken one step further: when
design costs one line, the tool can write the lines too.

Shape under test: the fixed-seed search finds a front that strictly
dominates at least one seeded preset on MPKI-vs-area, and successive
halving spends measurably fewer evaluation cells than evaluating every
candidate on the full suite.
"""

import pytest

from repro.explore import ExploreConfig, explore, format_report


@pytest.fixture(scope="module")
def search_result(scale):
    config = ExploreConfig(
        seed=0,
        generations=3,
        population_size=10,
        budget_kib=96.0,
        workloads=("biased", "dispatch", "pattern_short", "counted_loops"),
        scale=min(scale, 0.3),
        max_instructions=6000,
        backend="trace",
        rungs=3,
    )
    return explore(config)


def test_explore_search(benchmark, report, search_result):
    result = benchmark.pedantic(lambda: search_result, iterations=1, rounds=1)
    report("explore_search", format_report(result))

    assert result.front, "search must produce a non-empty front"
    # The evolved front beats at least one of the paper's seeded designs.
    assert result.dominated_seeds()
    # Successive halving saved evaluation cells over full-suite scoring.
    prov = result.provenance
    assert prov["evals_saved_by_halving"] > 0
    # The archive is a real frontier: MPKI decreases as area increases.
    mpkis = [p.mean_mpki for p in result.front]
    assert mpkis == sorted(mpkis, reverse=True)
