"""E5 — Fig. 9: whole-core area with each of the three predictors.

Paper shape under test: "The total area of even a large predictor design is
only a small portion of the area of a large superscalar out-of-order core."
"""

from repro import presets
from repro.synthesis import AreaModel, format_breakdown


def build_report():
    model = AreaModel()
    fractions = {}
    sections = []
    for name, label in (("tourney", "Tournament"), ("b2", "B2"), ("tage_l", "TAGE-L")):
        predictor = presets.build(name)
        breakdown = model.core_breakdown(predictor)
        fractions[name] = model.predictor_fraction(predictor)
        sections.append(
            f"core with {label}: predictor share "
            f"{fractions[name] * 100:.1f}% of {sum(breakdown.values()):.0f} um^2"
        )
        sections.append(format_breakdown(breakdown))
        sections.append("")
    return "\n".join(sections), fractions


def test_fig9_core_area(benchmark, report):
    text, fractions = benchmark(build_report)
    report("fig9_core_area", text)
    # Even the largest predictor is a modest slice of the core.
    assert fractions["tage_l"] < 0.25
    assert fractions["b2"] < fractions["tage_l"]
    assert fractions["tourney"] < fractions["tage_l"]
