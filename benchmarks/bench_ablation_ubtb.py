"""Ablation A2: the value of the single-cycle uBTB.

§II-A: "to reduce the frequency of frontend bubbles inserted by a slow,
long-latency predictor, modern predictor implementations will typically
include faster low-latency predictors".  This ablation removes the uBTB
from the TAGE-L topology and sweeps its capacity, measuring taken-branch
redirect bubbles and IPC on a loop-heavy workload.
"""

import pytest

from repro.components.library import standard_library
from repro.components.tage import default_tables
from repro.core import ComposerConfig, compose
from repro.eval import run_workload
from repro.workloads import build_specint

VARIANTS = (
    ("no uBTB", "LOOP3 > TAGE3 > BTB2 > BIM2", None),
    ("8-entry", "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", 8),
    ("32-entry", "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", 32),
    ("128-entry", "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", 128),
)


def build(topology, ubtb_entries):
    library = standard_library(
        global_history_bits=64,
        tage_tables=default_tables(n_sets=1024),
        ubtb_entries=ubtb_entries or 32,
    )
    return compose(topology, library, ComposerConfig(global_history_bits=64))


@pytest.fixture(scope="module")
def ubtb_sweep(scale):
    program = build_specint("x264", scale=scale)
    rows = []
    for label, topology, entries in VARIANTS:
        result = run_workload(build(topology, entries), program,
                              system_name=label)
        rows.append((label, result))
    return rows


def test_ablation_ubtb(benchmark, report, ubtb_sweep):
    rows = benchmark.pedantic(lambda: ubtb_sweep, iterations=1, rounds=1)
    lines = [f"{'variant':>10s} {'IPC':>6s} {'acc':>7s} {'stage-2+ redirects':>19s}"]
    for label, result in rows:
        redirects = sum(result.stats.stage_redirects.values())
        lines.append(
            f"{label:>10s} {result.ipc:6.2f} "
            f"{result.branch_accuracy * 100:6.1f}% {redirects:19d}"
        )
    report("ablation_ubtb", "\n".join(lines))

    by_label = dict(rows)
    # A uBTB buys IPC on taken-branch-dense code by redirecting at Fetch-1.
    assert by_label["32-entry"].ipc > by_label["no uBTB"].ipc
    # Accuracy is barely affected — the uBTB changes *latency*, not the
    # final prediction (later stages override it).
    assert abs(
        by_label["32-entry"].branch_accuracy - by_label["no uBTB"].branch_accuracy
    ) < 0.02
