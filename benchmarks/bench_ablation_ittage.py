"""Ablation A4: indirect-target prediction beyond the BTB.

The starter library's BTB remembers one target per jump site; the ITTAGE
extension applies tagged geometric histories to targets.  Dispatch-heavy
workloads (perlbench/omnetpp-style interpreters) are where it pays —
demonstrating that the COBRA interface extends cleanly to target
prediction, one of the "may be implemented similarly" claims (§III-G).
"""

import pytest

from repro.components.library import standard_library
from repro.core import ComposerConfig, compose
from repro.eval import run_workload
from repro.workloads import build_specint

BENCHES = ("perlbench", "omnetpp", "xalancbmk")


def build(with_ittage: bool):
    topo = "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
    if with_ittage:
        topo = "ITTAGE3 > " + topo
    library = standard_library(global_history_bits=64)
    return compose(topo, library, ComposerConfig(global_history_bits=64))


@pytest.fixture(scope="module")
def ittage_results(scale):
    rows = {}
    for bench in BENCHES:
        program = build_specint(bench, scale=scale)
        rows[bench] = (
            run_workload(build(False), program, system_name="btb-only"),
            run_workload(build(True), program, system_name="+ittage"),
        )
    return rows


def test_ablation_ittage(benchmark, report, ittage_results):
    rows = benchmark.pedantic(lambda: ittage_results, iterations=1, rounds=1)
    lines = [f"{'bench':12s} {'tgt-miss base':>14s} {'tgt-miss +it':>13s} "
             f"{'IPC base':>9s} {'IPC +it':>8s}"]
    for bench, (base, it) in rows.items():
        lines.append(
            f"{bench:12s} {base.target_mispredicts:14d} "
            f"{it.target_mispredicts:13d} {base.ipc:9.2f} {it.ipc:8.2f}"
        )
    report("ablation_ittage", "\n".join(lines))

    total_base = sum(base.target_mispredicts for base, _ in rows.values())
    total_it = sum(it.target_mispredicts for _, it in rows.values())
    assert total_it < 0.8 * total_base
    for bench, (base, it) in rows.items():
        assert it.ipc >= base.ipc - 0.02
