"""E9 — §VI-C: short-forwards-branch (hammock) predication on CoreMark.

Paper: decoding short forward branches into set-flag / conditional-execute
micro-ops raised a TAGE-L BOOM from 4.9 to 6.1 CoreMarks/MHz and from 97%
to 99.1% branch prediction accuracy, via two effects: the hammocks stop
mispredicting, and the predictor stops wasting capacity learning them.

Shapes under test: with SFB enabled on the CoreMark-like workload, accuracy
rises by percentage points, throughput (work per kilocycle — our
CoreMarks/MHz analogue) rises substantially, and some branches are
converted to predication.
"""

import pytest

from repro import presets
from repro.frontend import Core, CoreConfig
from repro.workloads import build_coremark


@pytest.fixture(scope="module")
def sfb_results(scale):
    program = build_coremark(scale=scale)
    base = Core(program, presets.build("tage_l"), CoreConfig()).run()
    sfb = Core(
        program, presets.build("tage_l"), CoreConfig(sfb_enabled=True)
    ).run()
    return base, sfb


def test_sec6c_sfb(benchmark, report, sfb_results):
    base, sfb = benchmark.pedantic(lambda: sfb_results, iterations=1, rounds=1)
    # "CoreMarks/MHz" analogue: architectural work per kilocycle.
    base_cm = 1000 * base.committed_instructions / base.cycles
    sfb_cm = 1000 * sfb.committed_instructions / sfb.cycles
    lines = [
        f"{'config':14s} {'work/kcycle':>12s} {'accuracy':>9s} "
        f"{'mispredicts':>12s} {'SFBs converted':>15s}",
        f"{'baseline':14s} {base_cm:12.0f} {base.branch_accuracy * 100:8.1f}% "
        f"{base.branch_mispredicts:12d} {base.sfb_converted:15d}",
        f"{'sfb enabled':14s} {sfb_cm:12.0f} {sfb.branch_accuracy * 100:8.1f}% "
        f"{sfb.branch_mispredicts:12d} {sfb.sfb_converted:15d}",
        f"throughput gain: {100 * (sfb_cm / base_cm - 1):+.1f}%   "
        f"(paper: 4.9 -> 6.1 CoreMarks/MHz, +24%)",
    ]
    report("sec6c_sfb_coremark", "\n".join(lines))

    assert sfb.sfb_converted > 0
    assert sfb.branch_accuracy > base.branch_accuracy + 0.005
    assert sfb_cm > base_cm * 1.05
    assert sfb.branch_mispredicts < base.branch_mispredicts
