"""Wall-clock benchmark of the execution backends (trace vs. replay).

The ``replay`` backend drives a composed predictor straight from stored
``BranchTrace`` npz columns — no interpreter in the loop, plain runs
between branch records consumed arithmetically (exact by the
``branchless_inert`` contract, rule CON008).  This benchmark runs the
full micro suite through the backends, asserts the two trace-driven
backends produce bit-identical branch and mispredict counts on every
cell, and checks the acceptance criterion:

    aggregate replay throughput >= 3x trace throughput (branches/sec)
    over the micro suite.

Two configurations are measured, because what dominates wall time
differs:

1. **Backend overhead** (the asserted configuration): a scalar
   (fetch_width=1) pipeline with a minimal bimodal payload, so measured
   time is dominated by the execution layer itself — the object under
   test.  Here the trace backend queries the predictor once per fetched
   instruction while replay queries once per branch record, which is
   exactly the CBP-style replay win.
2. **Realistic payload** (context, no assert): the default width-4
   ``tage_l`` preset, where the composed predictor's own Python cost
   dominates both backends equally and the speedup is bounded by the
   share of packets containing a branch (see docs/performance.md).

Predictors are constructed outside the timed region; npz load time is
charged to the replay column (the real workflow cost).

Run directly (``python benchmarks/bench_backends.py [--quick]``) or via
pytest.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import presets  # noqa: E402
from repro.backends import RunLimits, get_backend  # noqa: E402
from repro.components.library import standard_library  # noqa: E402
from repro.core.composer import ComposerConfig, compose  # noqa: E402
from repro.workloads.micro import MICRO_NAMES, build_micro  # noqa: E402
from repro.workloads.registry import WorkloadSource  # noqa: E402
from repro.workloads.traces import capture_trace  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

FULL_WORKLOADS = tuple(MICRO_NAMES)
QUICK_WORKLOADS = ("steady_loop", "biased", "dispatch")
SCALE = 0.5
BUDGET = 200_000

#: Payload for the asserted backend-overhead configuration: a scalar
#: pipeline with a single bimodal leaf, the cheapest composition the
#: library builds.
LIGHT_SPEC = "BIM2"
LIGHT_WIDTH = 1
#: Payload for the realistic context table.
CONTEXT_PRESET = "tage_l"


def build_light():
    library = standard_library(
        fetch_width=LIGHT_WIDTH,
        global_history_bits=16,
        gtag_history_bits=16,
    )
    config = ComposerConfig(fetch_width=LIGHT_WIDTH, global_history_bits=16)
    return compose(LIGHT_SPEC, library, config)


def _measure(workloads, build_predictor, backends, tmp):
    """One table: run every workload through every backend.

    Returns ``(rows, totals, total_branches)`` where each row is
    ``(name, branches, mispredicts, {backend: seconds})``.  Asserts
    trace/replay bit-identity per cell.
    """
    limits = RunLimits(max_instructions=BUDGET)
    rows = []
    totals = {b: 0.0 for b in backends}
    total_branches = 0
    for name in workloads:
        program = build_micro(name, scale=SCALE)
        npz = Path(tmp) / f"{name}.npz"
        if not npz.exists():
            capture_trace(program, max_instructions=BUDGET).save(npz)
        live = WorkloadSource(name=name, program=program)
        stored = WorkloadSource(name=name, trace_path=npz)

        results = {}
        cell = {}
        for backend in backends:
            source = stored if backend == "replay" else live
            predictor = build_predictor()
            t0 = time.perf_counter()
            results[backend] = get_backend(backend).run(
                predictor, source, limits
            )
            cell[backend] = time.perf_counter() - t0
            totals[backend] += cell[backend]

        t, r = results["trace"], results["replay"]
        assert (t.branches, t.branch_mispredicts, t.instructions) == (
            r.branches,
            r.branch_mispredicts,
            r.instructions,
        ), f"replay diverged from trace on {name}"
        total_branches += t.branches
        rows.append((name, t.branches, t.branch_mispredicts, cell))
    return rows, totals, total_branches


def _table(title, rows, totals, total_branches, backends):
    lines = [title, "-" * 72]
    header = f"{'workload':16s} {'branches':>9s} {'mispred':>8s}"
    for backend in backends:
        header += f" {backend + ' s':>9s}"
    header += f" {'speedup':>8s}"
    lines.append(header)
    for name, branches, mispredicts, cell in rows:
        line = f"{name:16s} {branches:9d} {mispredicts:8d}"
        for backend in backends:
            line += f" {cell[backend]:9.2f}"
        line += f" {cell['trace'] / cell['replay']:7.2f}x"
        lines.append(line)
    lines.append("")
    lines.append(
        f"{'backend':10s} {'wall (s)':>9s} {'branches/sec':>13s} {'vs trace':>9s}"
    )
    trace_bps = total_branches / totals["trace"]
    for backend in backends:
        bps = total_branches / totals[backend]
        lines.append(
            f"{backend:10s} {totals[backend]:9.2f} {bps:13,.0f} "
            f"{bps / trace_bps:8.2f}x"
        )
    lines.append("")
    return lines


def run_benchmark(quick: bool = False) -> str:
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    lines = [
        f"suite: {len(workloads)} micro workloads, scale={SCALE}, "
        f"max_instructions={BUDGET}",
        "trace/replay counts bit-identical on every cell: asserted",
        "",
    ]
    with tempfile.TemporaryDirectory() as tmp:
        rows, totals, branches = _measure(
            workloads, build_light, ("trace", "replay"), tmp
        )
        lines += _table(
            f"backend overhead: payload {LIGHT_SPEC}, "
            f"fetch_width={LIGHT_WIDTH} (asserted configuration)",
            rows,
            totals,
            branches,
            ("trace", "replay"),
        )
        speedup = totals["trace"] / totals["replay"]
        lines.append(
            f"replay vs trace: {speedup:.2f}x branches/sec "
            f"(target >= 3x on the full suite)"
        )
        lines.append("")

        if not quick:
            rows, ctotals, cbranches = _measure(
                workloads,
                lambda: presets.build(CONTEXT_PRESET),
                ("cycle", "trace", "replay"),
                tmp,
            )
            lines += _table(
                f"realistic payload: preset {CONTEXT_PRESET}, fetch_width=4 "
                f"(context; speedup is bounded by the predictor's own cost)",
                rows,
                ctotals,
                cbranches,
                ("cycle", "trace", "replay"),
            )
    if not quick:
        assert speedup >= 3.0, f"replay speedup {speedup:.2f}x < 3x"
    return "\n".join(lines)


def test_backends(report):
    report("backends", run_benchmark(quick=False))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small suite, no 3x acceptance assert (CI smoke)",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print only, skip results/"
    )
    args = parser.parse_args()
    text = run_benchmark(quick=args.quick)
    print(text)
    if not args.quick and not args.no_write:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "backends.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
