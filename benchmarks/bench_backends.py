"""Wall-clock benchmark of the execution backends (trace vs. replay).

The ``replay`` backend drives a composed predictor straight from stored
``BranchTrace`` npz columns — no interpreter in the loop, plain runs
between branch records consumed arithmetically (exact by the
``branchless_inert`` contract, rule CON008).  This benchmark runs the
full micro suite through the backends, asserts the two trace-driven
backends produce bit-identical branch and mispredict counts on every
cell, and checks the acceptance criterion:

    aggregate replay throughput >= 3x trace throughput (branches/sec)
    over the micro suite.

Two configurations are measured, because what dominates wall time
differs:

1. **Backend overhead** (the asserted configuration): a scalar
   (fetch_width=1) pipeline with a minimal bimodal payload, so measured
   time is dominated by the execution layer itself — the object under
   test.  Here the trace backend queries the predictor once per fetched
   instruction while replay queries once per branch record, which is
   exactly the CBP-style replay win.
2. **Realistic payload**: the default width-4 ``tage_l`` preset.  The
   ``replay`` backend takes the columnar batch-kernel path here
   (``repro.kernels``); a ``replay-scalar`` column drives the same
   columnar walker with the segment engine disabled, so the table
   separates the kernels' contribution from the record-skipping win.
   The asserted criterion on this table:

    kernel replay throughput >= 2x trace throughput (branches/sec)
    over the tage_l fetch_width=4 micro suite.

   (The original 10x ambition is not reachable while mispredict repair
   and stale no-replay history windows stay on the scalar path by
   design; see docs/performance.md for the floor analysis.)

Predictors are constructed outside the timed region; npz load time is
charged to the replay columns (the real workflow cost).

Run directly (``python benchmarks/bench_backends.py [--quick]``) or via
pytest.  ``--json PATH`` additionally writes the machine-readable
results; a plain full run refreshes both committed artifacts
(``results/backends.txt`` and ``results/backends.json``).
``--kernels-smoke`` runs only the tage_l trace-vs-kernels comparison
with the 2x assert — the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import presets  # noqa: E402
from repro.backends import RunLimits, get_backend  # noqa: E402
from repro.components.library import standard_library  # noqa: E402
from repro.core.composer import ComposerConfig, compose  # noqa: E402
from repro.workloads.micro import MICRO_NAMES, build_micro  # noqa: E402
from repro.workloads.registry import WorkloadSource  # noqa: E402
from repro.workloads.traces import capture_trace  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

FULL_WORKLOADS = tuple(MICRO_NAMES)
QUICK_WORKLOADS = ("steady_loop", "biased", "dispatch")
SCALE = 0.5
BUDGET = 200_000

#: Payload for the asserted backend-overhead configuration: a scalar
#: pipeline with a single bimodal leaf, the cheapest composition the
#: library builds.
LIGHT_SPEC = "BIM2"
LIGHT_WIDTH = 1
#: Payload for the realistic context table.
CONTEXT_PRESET = "tage_l"
#: Asserted floor for batch-kernel replay vs trace on the tage_l table
#: (full run and ``--kernels-smoke``).  Measured headroom is ~2.6x; the
#: scalar-by-design mispredict/stale-window floor rules out the 10x that
#: the light table's record-skipping enjoys (docs/performance.md).
KERNEL_FLOOR = 2.0


def build_light():
    library = standard_library(
        fetch_width=LIGHT_WIDTH,
        global_history_bits=16,
        gtag_history_bits=16,
    )
    config = ComposerConfig(fetch_width=LIGHT_WIDTH, global_history_bits=16)
    return compose(LIGHT_SPEC, library, config)


def _run_replay_scalar(predictor, source, limits):
    """The columnar walker with the batch-kernel segment engine disabled."""
    from repro.backends.replay import drive_columns, trace_packets

    branch_trace = source.branch_trace(limits.max_instructions)
    packets = trace_packets(branch_trace, predictor.config.fetch_width)
    return drive_columns(
        predictor, branch_trace, packets, limits.max_instructions, engine=None
    )


def _measure(workloads, build_predictor, backends, tmp):
    """One table: run every workload through every backend.

    Returns ``(rows, totals, total_branches)`` where each row is
    ``(name, branches, mispredicts, {backend: seconds})``.  Asserts that
    every trace-driven backend reproduces the trace backend's counts bit
    for bit per cell (``cycle`` is exempt by design, §II-B).
    """
    limits = RunLimits(max_instructions=BUDGET)
    rows = []
    totals = {b: 0.0 for b in backends}
    total_branches = 0
    for name in workloads:
        program = build_micro(name, scale=SCALE)
        npz = Path(tmp) / f"{name}.npz"
        if not npz.exists():
            capture_trace(program, max_instructions=BUDGET).save(npz)
        live = WorkloadSource(name=name, program=program)
        stored = WorkloadSource(name=name, trace_path=npz)

        sig = {}
        cell = {}
        for backend in backends:
            predictor = build_predictor()
            if backend == "replay-scalar":
                t0 = time.perf_counter()
                counts = _run_replay_scalar(predictor, stored, limits)
                sig[backend] = (
                    counts.branches,
                    counts.mispredicts,
                    counts.instructions,
                )
            else:
                source = stored if backend == "replay" else live
                t0 = time.perf_counter()
                result = get_backend(backend).run(predictor, source, limits)
                sig[backend] = (
                    result.branches,
                    result.branch_mispredicts,
                    result.instructions,
                )
            cell[backend] = time.perf_counter() - t0
            totals[backend] += cell[backend]

        for backend in backends:
            if backend in ("trace", "cycle"):
                continue
            assert sig[backend] == sig["trace"], (
                f"{backend} diverged from trace on {name}: "
                f"{sig[backend]} != {sig['trace']}"
            )
        branches, mispredicts, _ = sig["trace"]
        total_branches += branches
        rows.append((name, branches, mispredicts, cell))
    return rows, totals, total_branches


def _table(title, rows, totals, total_branches, backends):
    lines = [title, "-" * 72]
    widths = {b: max(9, len(b) + 2) for b in backends}
    header = f"{'workload':16s} {'branches':>9s} {'mispred':>8s}"
    for backend in backends:
        header += f" {backend + ' s':>{widths[backend]}s}"
    header += f" {'speedup':>8s}"
    lines.append(header)
    for name, branches, mispredicts, cell in rows:
        line = f"{name:16s} {branches:9d} {mispredicts:8d}"
        for backend in backends:
            line += f" {cell[backend]:{widths[backend]}.2f}"
        line += f" {cell['trace'] / cell['replay']:7.2f}x"
        lines.append(line)
    lines.append("")
    lines.append(
        f"{'backend':14s} {'wall (s)':>9s} {'branches/sec':>13s} {'vs trace':>9s}"
    )
    trace_bps = total_branches / totals["trace"]
    for backend in backends:
        bps = total_branches / totals[backend]
        lines.append(
            f"{backend:14s} {totals[backend]:9.2f} {bps:13,.0f} "
            f"{bps / trace_bps:8.2f}x"
        )
    lines.append("")
    return lines


def _rows_payload(rows, backends):
    return [
        {
            "workload": name,
            "branches": branches,
            "mispredicts": mispredicts,
            "seconds": {b: round(cell[b], 4) for b in backends},
        }
        for name, branches, mispredicts, cell in rows
    ]


def _table_payload(rows, totals, total_branches, backends):
    return {
        "backends": list(backends),
        "rows": _rows_payload(rows, backends),
        "total_seconds": {b: round(totals[b], 4) for b in backends},
        "total_branches": total_branches,
        "branches_per_second": {
            b: round(total_branches / totals[b], 1) for b in backends
        },
    }


def run_benchmark(quick: bool = False):
    """Returns ``(text, data)``: the printable tables + the JSON payload."""
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    lines = [
        f"suite: {len(workloads)} micro workloads, scale={SCALE}, "
        f"max_instructions={BUDGET}",
        "trace-driven backend counts bit-identical on every cell: asserted",
        "",
    ]
    data = {
        "suite": {
            "workloads": list(workloads),
            "scale": SCALE,
            "max_instructions": BUDGET,
            "quick": quick,
        },
        "tables": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        rows, totals, branches = _measure(
            workloads, build_light, ("trace", "replay"), tmp
        )
        lines += _table(
            f"backend overhead: payload {LIGHT_SPEC}, "
            f"fetch_width={LIGHT_WIDTH} (asserted configuration)",
            rows,
            totals,
            branches,
            ("trace", "replay"),
        )
        speedup = totals["trace"] / totals["replay"]
        lines.append(
            f"replay vs trace: {speedup:.2f}x branches/sec "
            f"(target >= 3x on the full suite)"
        )
        lines.append("")
        light = _table_payload(rows, totals, branches, ("trace", "replay"))
        light["payload"] = LIGHT_SPEC
        light["fetch_width"] = LIGHT_WIDTH
        light["speedup_replay_vs_trace"] = round(speedup, 3)
        data["tables"]["light"] = light

        kernel_speedup = None
        if not quick:
            cbackends = ("cycle", "trace", "replay-scalar", "replay")
            rows, ctotals, cbranches = _measure(
                workloads,
                lambda: presets.build(CONTEXT_PRESET),
                cbackends,
                tmp,
            )
            lines += _table(
                f"realistic payload: preset {CONTEXT_PRESET}, fetch_width=4 "
                f"(replay = columnar batch kernels, replay-scalar = "
                f"kernels disabled)",
                rows,
                ctotals,
                cbranches,
                cbackends,
            )
            kernel_speedup = ctotals["trace"] / ctotals["replay"]
            kernel_vs_scalar = ctotals["replay-scalar"] / ctotals["replay"]
            lines.append(
                f"batch kernels vs trace: {kernel_speedup:.2f}x branches/sec "
                f"(floor >= {KERNEL_FLOOR:.0f}x); vs scalar columnar walk: "
                f"{kernel_vs_scalar:.2f}x"
            )
            lines.append("")
            context = _table_payload(rows, ctotals, cbranches, cbackends)
            context["payload"] = CONTEXT_PRESET
            context["fetch_width"] = 4
            context["speedup_kernels_vs_trace"] = round(kernel_speedup, 3)
            context["speedup_kernels_vs_scalar"] = round(kernel_vs_scalar, 3)
            data["tables"]["context"] = context
    if not quick:
        assert speedup >= 3.0, f"replay speedup {speedup:.2f}x < 3x"
        assert kernel_speedup >= KERNEL_FLOOR, (
            f"batch-kernel replay {kernel_speedup:.2f}x < {KERNEL_FLOOR}x "
            f"vs trace on {CONTEXT_PRESET}"
        )
    return "\n".join(lines), data


def _derived_kernel_names(predictor):
    """Component names whose columnar kernel is spec-generated."""
    from repro.derive import kernel_is_derived

    return [
        c.name for c in predictor.components if kernel_is_derived(c) is True
    ]


def run_kernels_smoke():
    """CI gate: tage_l trace vs batch-kernel replay, with the floor assert."""
    derived = _derived_kernel_names(presets.build(CONTEXT_PRESET))
    # The gated composition must actually exercise generated kernels:
    # the floor is meaningless if the derivation layer silently stopped
    # supplying them and the engine fell back.
    assert derived, (
        f"preset {CONTEXT_PRESET} runs no spec-derived kernels; "
        f"the KERNEL_FLOOR gate no longer covers repro.derive.kernels"
    )
    lines = [
        f"kernels smoke: preset {CONTEXT_PRESET}, fetch_width=4, "
        f"scale={SCALE}, max_instructions={BUDGET}",
        "trace/replay counts bit-identical on every cell: asserted",
        f"spec-derived kernels in flight: {', '.join(derived)}",
        "",
    ]
    with tempfile.TemporaryDirectory() as tmp:
        rows, totals, branches = _measure(
            FULL_WORKLOADS,
            lambda: presets.build(CONTEXT_PRESET),
            ("trace", "replay"),
            tmp,
        )
    lines += _table(
        "batch-kernel replay vs trace",
        rows,
        totals,
        branches,
        ("trace", "replay"),
    )
    speedup = totals["trace"] / totals["replay"]
    lines.append(
        f"batch kernels vs trace: {speedup:.2f}x branches/sec "
        f"(floor >= {KERNEL_FLOOR:.0f}x)"
    )
    table = _table_payload(rows, totals, branches, ("trace", "replay"))
    table["payload"] = CONTEXT_PRESET
    table["fetch_width"] = 4
    table["speedup_kernels_vs_trace"] = round(speedup, 3)
    table["derived_kernels"] = derived
    data = {
        "suite": {
            "workloads": list(FULL_WORKLOADS),
            "scale": SCALE,
            "max_instructions": BUDGET,
            "quick": False,
        },
        "tables": {"kernels_smoke": table},
    }
    return "\n".join(lines), data, speedup


def test_backends(report):
    text, _data = run_benchmark(quick=False)
    report("backends", text)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small suite, no acceptance asserts (CI smoke)",
    )
    parser.add_argument(
        "--kernels-smoke",
        action="store_true",
        help=f"tage_l trace-vs-kernels only, asserts >= {KERNEL_FLOOR}x "
        f"(CI gate)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the machine-readable results to PATH",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print only, skip results/"
    )
    args = parser.parse_args()
    if args.kernels_smoke:
        text, data, speedup = run_kernels_smoke()
        print(text)
        if args.json:
            Path(args.json).write_text(json.dumps(data, indent=2) + "\n")
        assert speedup >= KERNEL_FLOOR, (
            f"batch-kernel replay {speedup:.2f}x < {KERNEL_FLOOR}x vs trace "
            f"on {CONTEXT_PRESET}"
        )
        return 0
    text, data = run_benchmark(quick=args.quick)
    print(text)
    if args.json:
        Path(args.json).write_text(json.dumps(data, indent=2) + "\n")
    if not args.quick and not args.no_write:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "backends.txt").write_text(text + "\n")
        (RESULTS_DIR / "backends.json").write_text(
            json.dumps(data, indent=2) + "\n"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
