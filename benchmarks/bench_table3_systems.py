"""E3 — Table III: the evaluated systems of the Fig. 10 comparison.

Five systems: two commercial-core proxies and the three COBRA-BOOM
variants, with their measurement platforms (DESIGN.md documents the
hardware -> proxy substitution).
"""

from repro.eval.comparison import evaluated_systems, format_table


def test_table3_systems(benchmark, report):
    table = benchmark(lambda: format_table(evaluated_systems()))
    report("table3_systems", table)
    systems = evaluated_systems()
    assert len(systems) == 5
    # Every system must be runnable: factories build fresh predictors.
    for system in systems:
        predictor = system.predictor_factory()
        assert predictor.can_predict
