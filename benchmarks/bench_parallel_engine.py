"""Wall-clock benchmark of the parallel evaluation engine.

Measures the same preset x micro-workload suite that the seed-era serial
runner was timed on (``results/parallel_engine_baseline.json``) under four
execution modes, and checks the acceleration criteria of the parallel-engine
change:

1. ``serial, memoization off`` — the hot-path micro-optimizations disabled
   (``CoreConfig(fetch_memoization=False)``), approximating the seed-era
   inner loop on today's code.
2. ``serial, optimized`` — the default single-process path.  Target:
   >= 1.3x over the committed seed-era baseline wall clock.
3. ``jobs=4, cold cache`` — process fan-out against an empty cache.
4. ``jobs=4, warm cache`` — the same invocation again.  Target: >= 3x over
   the seed-era baseline (on a multi-core host the cold parallel run also
   beats serial; on a single-core CI box the cache carries the criterion).

All four modes must produce identical result matrices — the benchmark
asserts this, so a speedup that changed any number would fail loudly.

Run directly (``python benchmarks/bench_parallel_engine.py [--quick]``) or
via pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.cache import ResultCache  # noqa: E402
from repro.eval.runner import run_suite  # noqa: E402
from repro.frontend.config import CoreConfig  # noqa: E402
from repro.workloads.micro import build_micro  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "parallel_engine_baseline.json"

FULL_SYSTEMS = ["tage_l", "b2", "tourney"]
FULL_WORKLOADS = ["pattern_long", "dispatch", "counted_loops", "biased"]
QUICK_SYSTEMS = ["b2", "tourney"]
QUICK_WORKLOADS = ["biased", "dispatch"]


def _matrices_equal(a, b) -> bool:
    return all(
        a[system][workload] == b[system][workload]
        for system in a
        for workload in a[system]
    )


def run_benchmark(quick: bool = False, jobs: int = 4) -> str:
    if quick:
        systems, workload_names = QUICK_SYSTEMS, QUICK_WORKLOADS
        scale, max_instructions = 0.2, 4000
    else:
        systems, workload_names = FULL_SYSTEMS, FULL_WORKLOADS
        scale, max_instructions = 0.5, 30000
    programs = {n: build_micro(n, scale=scale) for n in workload_names}
    suite = dict(max_instructions=max_instructions)

    timings = {}

    def timed(label, **kwargs):
        t0 = time.perf_counter()
        result = run_suite(systems, programs, **suite, **kwargs)
        timings[label] = time.perf_counter() - t0
        return result

    unoptimized = timed(
        "serial, memoization off",
        core_config=CoreConfig(fetch_memoization=False),
    )
    serial = timed("serial, optimized")
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        cold = timed(f"jobs={jobs}, cold cache", jobs=jobs, cache=cache)
        warm = timed(f"jobs={jobs}, warm cache", jobs=jobs, cache=cache)
        cache_stats = (cache.hits, cache.misses)

    for label, other in [
        ("memoization off", unoptimized),
        ("cold parallel", cold),
        ("warm parallel", warm),
    ]:
        assert _matrices_equal(serial, other), f"{label} diverged from serial"

    lines = []
    suite_desc = (
        f"{len(systems)} systems x {len(workload_names)} workloads, "
        f"scale={scale}, max_instructions={max_instructions}"
    )
    lines.append(f"suite: {suite_desc}")

    baseline_seconds = None
    if not quick and BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        baseline_seconds = baseline["serial_seconds"]
        lines.append(
            f"seed-era serial baseline: {baseline_seconds:.2f} s "
            f"({baseline['note']})"
        )
    reference = baseline_seconds or timings["serial, memoization off"]
    ref_name = "seed baseline" if baseline_seconds else "memoization-off run"

    lines.append("")
    lines.append(f"{'mode':28s} {'wall (s)':>9s} {'vs ' + ref_name:>18s}")
    lines.append("-" * 58)
    for label, seconds in timings.items():
        speedup = reference / seconds if seconds > 0 else float("inf")
        lines.append(f"{label:28s} {seconds:9.2f} {speedup:17.2f}x")
    lines.append("")
    lines.append(
        f"cache: {cache_stats[0]} hits / {cache_stats[1]} misses over the "
        "cold+warm runs"
    )
    lines.append("result matrices identical across all four modes: yes")

    if not quick and baseline_seconds:
        serial_speedup = reference / timings["serial, optimized"]
        warm_speedup = reference / timings[f"jobs={jobs}, warm cache"]
        lines.append("")
        lines.append(
            f"acceptance: serial {serial_speedup:.2f}x (target >= 1.3x), "
            f"warm-cache {warm_speedup:.2f}x (target >= 3x)"
        )
        assert serial_speedup >= 1.3, f"serial speedup {serial_speedup:.2f}x < 1.3x"
        assert warm_speedup >= 3.0, f"warm-cache speedup {warm_speedup:.2f}x < 3x"
    return "\n".join(lines)


def test_parallel_engine(report):
    report("parallel_engine", run_benchmark(quick=False))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small suite, no baseline comparison (CI smoke)",
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--no-write", action="store_true", help="print only, skip results/"
    )
    args = parser.parse_args()
    text = run_benchmark(quick=args.quick, jobs=args.jobs)
    print(text)
    if not args.quick and not args.no_write:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "parallel_engine.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
