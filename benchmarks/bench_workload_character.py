"""Workload characterization: the branch-character table behind Fig. 10.

Captures a branch trace of every synthetic SPECint workload and summarizes
branch density, taken rate, indirect share, and the hard-branch population
(share of static conditional sites with mixed outcomes).  This documents
that the synthetic suite actually spans the behaviour classes the paper's
benchmarks span — the foundation of the DESIGN.md workload substitution.
"""

import pytest

from repro.workloads import SPECINT_NAMES, build_specint, capture_trace


@pytest.fixture(scope="module")
def characterization(scale):
    rows = {}
    for name in SPECINT_NAMES:
        trace = capture_trace(build_specint(name, scale=min(scale, 0.3)))
        rows[name] = trace.characterize()
    return rows


def test_workload_character(benchmark, report, characterization):
    rows = benchmark.pedantic(lambda: characterization, iterations=1, rounds=1)
    lines = [
        f"{'bench':12s} {'br/instr':>9s} {'taken':>7s} {'indirect':>9s} "
        f"{'call/ret':>9s} {'sites':>6s} {'mixed':>7s}"
    ]
    for name, stats in rows.items():
        lines.append(
            f"{name:12s} {stats['branch_density']:9.3f} "
            f"{stats['taken_rate'] * 100:6.1f}% "
            f"{stats['indirect_share'] * 100:8.1f}% "
            f"{stats['call_ret_share'] * 100:8.1f}% "
            f"{stats['static_cond_sites']:6.0f} "
            f"{stats['mixed_site_share'] * 100:6.1f}%"
        )
    report("workload_characterization", "\n".join(lines))

    # The suite spans behaviour classes:
    densities = {n: s["branch_density"] for n, s in rows.items()}
    mixed = {n: s["mixed_site_share"] for n, s in rows.items()}
    # Loop-dominated exchange2 has a lower hard-branch share than the
    # search codes.
    assert mixed["exchange2"] <= mixed["deepsjeng"]
    assert mixed["x264"] <= max(mixed["mcf"], mixed["leela"])
    # Dispatch-heavy codes carry indirect branches; loopy ones carry few.
    assert rows["perlbench"]["indirect_share"] > rows["exchange2"]["indirect_share"]
    # Everything is meaningfully branchy (synthetic int codes).
    assert all(0.05 < d < 0.6 for d in densities.values())
