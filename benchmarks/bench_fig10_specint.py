"""E6 — Fig. 10: branch MPKI and IPC across the SPECint17 suite.

Five systems (Table III): skylake-proxy, graviton-proxy, and the three
COBRA-BOOM variants, over the ten synthetic SPECint17 workloads, with a
mean column (harmonic for IPC, as in the paper's HARMEAN; arithmetic for
MPKI, which can legitimately approach zero).

Shapes under test (the reproduction target — not absolute numbers):
- TAGE-L achieves the lowest MPKI and highest IPC of the three BOOM
  variants, on the mean and on the hard benchmarks.
- B2 and Tournament are less accurate but much smaller designs.
- The large-predictor proxy (skylake) leads the BOOM variants in accuracy.
"""

import pytest

from repro.baselines import proxy_systems
from repro.eval import harmonic_mean, run_suite
from repro.eval.metrics import arithmetic_mean
from repro.synthesis.report import format_matrix
from repro.workloads import SPECINT_NAMES, build_specint


@pytest.fixture(scope="module")
def suite_results(scale):
    programs = {name: build_specint(name, scale=scale) for name in SPECINT_NAMES}
    systems = proxy_systems() + ["tourney", "b2", "tage_l"]
    return run_suite(systems, programs)


def test_fig10_specint(benchmark, report, suite_results):
    results = benchmark.pedantic(lambda: suite_results, iterations=1, rounds=1)

    mpki = {
        system: {w: r.mpki for w, r in rows.items()}
        for system, rows in results.items()
    }
    ipc = {
        system: {w: r.ipc for w, r in rows.items()}
        for system, rows in results.items()
    }
    for system in mpki:
        mpki[system]["MEAN"] = arithmetic_mean(list(mpki[system].values()))
        ipc[system]["HARMEAN"] = harmonic_mean(list(ipc[system].values()))

    text = (
        "Branch MPKI (conditional direction mispredicts / kilo-instruction):\n"
        + format_matrix(mpki, value_format="{:7.1f}", col_width=10)
        + "\n\nIPC:\n"
        + format_matrix(ipc, value_format="{:7.2f}", col_width=10)
    )
    report("fig10_specint", text)

    # --- shape assertions -------------------------------------------------
    boom = ("tourney", "b2", "tage_l")
    mean_mpki = {s: mpki[s]["MEAN"] for s in mpki}
    mean_ipc = {s: ipc[s]["HARMEAN"] for s in ipc}

    # TAGE-L best of the BOOM variants.
    assert mean_mpki["tage_l"] < mean_mpki["b2"]
    assert mean_mpki["tage_l"] < mean_mpki["tourney"]
    assert mean_ipc["tage_l"] > mean_ipc["b2"]
    assert mean_ipc["tage_l"] > mean_ipc["tourney"]

    # The large commercial proxy leads the small BOOM designs on accuracy.
    assert mean_mpki["skylake-proxy"] < mean_mpki["b2"]
    assert mean_mpki["skylake-proxy"] < mean_mpki["tourney"]

    # Easy loop-dominated benchmarks are near-solved for every system;
    # data-dependent ones are hard for every system.
    for system in boom:
        assert mpki[system]["exchange2"] < mpki[system]["mcf"]
        assert mpki[system]["x264"] < mpki[system]["deepsjeng"]
