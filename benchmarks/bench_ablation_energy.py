"""Ablation A3: predictor energy (§VI-A future work, realized).

"Predictor energy consumption is expected to be an important concern, as
the energy cost of continuously reading predictor SRAMs is significant."
Measures per-instruction predictor energy for the three designs — every
prediction reads every sub-component in parallel, so the big TAGE-L design
pays continuously, while the metadata mechanism (§III-D) keeps update
energy to a single write per structure.
"""

import pytest

from repro import presets
from repro.eval import run_workload
from repro.synthesis import EnergyModel
from repro.workloads import build_specint


@pytest.fixture(scope="module")
def energy_results(scale):
    program = build_specint("gcc", scale=scale)
    model = EnergyModel()
    rows = []
    for name in ("tourney", "b2", "tage_l"):
        predictor = presets.build(name)
        result = run_workload(predictor, program, system_name=name)
        epi = model.energy_per_instruction(predictor, result.instructions)
        rows.append((name, result, epi, model.component_energy(predictor)))
    return rows


def test_ablation_energy(benchmark, report, energy_results):
    rows = benchmark.pedantic(lambda: energy_results, iterations=1, rounds=1)
    lines = [f"{'design':>9s} {'pJ/instr':>9s} {'IPC':>6s} {'acc':>7s}   top consumers"]
    for name, result, epi, components in rows:
        top = sorted(components.items(), key=lambda kv: -kv[1])[:3]
        top_text = ", ".join(f"{n} {e / 1e3:.0f}nJ" for n, e in top)
        lines.append(
            f"{name:>9s} {epi:9.1f} {result.ipc:6.2f} "
            f"{result.branch_accuracy * 100:6.1f}%   {top_text}"
        )
    report("ablation_energy", "\n".join(lines))

    by_name = {name: epi for name, _, epi, _ in rows}
    # The big design costs the most energy per instruction.
    assert by_name["tage_l"] > by_name["b2"]
    assert by_name["tage_l"] > by_name["tourney"]
