"""E11 — §IV-A worked example: topology orderings change stage-2 behaviour.

The paper walks through two orderings of {uBTB1, PHT2, LOOP2}:

    LOOP2 > PHT2 > UBTB1      (later predictors override the uBTB)
    UBTB1 > PHT2 > LOOP2      (a uBTB hit is final at both stages)

Both pipelines must emit identical Fetch-1 predictions (only the uBTB has
responded), but at Fetch-2 the first lets the PHT/loop override while the
second keeps the uBTB prediction.  This bench drives both compositions on
the same workload and measures how often their *stage-2* decisions diverge,
and what that does to end-to-end accuracy.
"""

import pytest

from repro.components.library import standard_library
from repro.core import ComposerConfig, compose
from repro.eval import run_workload
from repro.workloads import build_specint

TOPO_OVERRIDE = "LOOP2 > GSHARE2 > UBTB1"   # PHT realized as a gshare table
TOPO_UBTB_TOP = "UBTB1 > GSHARE2 > LOOP2"


def build(topology):
    library = standard_library(global_history_bits=32)
    return compose(topology, library, ComposerConfig(global_history_bits=32))


@pytest.fixture(scope="module")
def semantics_results(scale):
    program = build_specint("perlbench", scale=scale)
    override = run_workload(build(TOPO_OVERRIDE), program,
                            system_name="override-ordering")
    ubtb_top = run_workload(build(TOPO_UBTB_TOP), program,
                            system_name="ubtb-top-ordering")
    return override, ubtb_top


def test_topology_semantics(benchmark, report, semantics_results):
    override, ubtb_top = benchmark.pedantic(
        lambda: semantics_results, iterations=1, rounds=1
    )
    lines = [
        f"{TOPO_OVERRIDE}: acc {override.branch_accuracy * 100:.2f}%  "
        f"IPC {override.ipc:.2f}  mispredicts {override.branch_mispredicts}",
        f"{TOPO_UBTB_TOP}: acc {ubtb_top.branch_accuracy * 100:.2f}%  "
        f"IPC {ubtb_top.ipc:.2f}  mispredicts {ubtb_top.branch_mispredicts}",
        "",
        "identical sub-components; only the topological ordering differs.",
    ]
    report("topology_semantics", "\n".join(lines))
    # The two orderings genuinely behave differently end to end...
    assert override.branch_mispredicts != ubtb_top.branch_mispredicts
    # ...and letting the history predictor override the 2-bit uBTB bias is
    # the better design, as the paper's Fig. 4 discussion implies.
    assert override.branch_accuracy >= ubtb_top.branch_accuracy


def test_stage1_predictions_identical():
    """Unit-level check of the §IV-A claim: both pipelines emit the same
    Fetch-1 prediction (only the uBTB has responded by then)."""
    from repro.core import PreDecodedSlot

    a = build(TOPO_OVERRIDE)
    b = build(TOPO_UBTB_TOP)
    slots = [PreDecodedSlot(is_cond_branch=True, direct_target=64)] + [
        PreDecodedSlot()
    ] * 3
    for pc in range(0, 64, 4):
        ra = a.predict(pc, list(slots))
        rb = b.predict(pc, list(slots))
        assert ra.staged[0] == rb.staged[0]
        a.commit_packet(ra.ftq_id)
        b.commit_packet(rb.ftq_id)
