"""E1 — Table I: parameters and storage of the three evaluated predictors.

Paper values (direction-prediction storage): Tournament 6.8 KB, B2 6.5 KB,
TAGE-L 28 KB.  The reproduction recomputes storage bit-by-bit from the
composed structures; the claim under test is the *relation* (TAGE-L is the
large design, roughly 4x the other two, which are comparable).
"""

from repro import presets

ROWS = (
    ("Tournament", "tourney",
     "32-bit global, 256x32-bit local histories; 16K-entry 2-bit BHT; "
     "1K tournament counters", 6.8),
    ("B2", "b2",
     "16-bit global history; 2K partially tagged + 16K untagged counters",
     6.5),
    ("TAGE-L", "tage_l",
     "64-bit global history; 7 TAGE tables; 256-entry loop predictor", 28.0),
)


def build_table() -> str:
    lines = [
        f"{'Predictor':12s} {'paper KB':>9s} {'repro KiB':>10s} "
        f"{'w/ targets':>11s} {'depth':>6s}  description",
        "-" * 100,
    ]
    for label, preset, description, paper_kb in ROWS:
        predictor = presets.build(preset)
        direction = predictor.direction_storage_kib()
        total = predictor.total_storage_kib(include_meta=False)
        lines.append(
            f"{label:12s} {paper_kb:9.1f} {direction:10.1f} {total:11.1f} "
            f"{predictor.depth:6d}  {description}"
        )
    return "\n".join(lines)


def test_table1_storage(benchmark, report):
    table = benchmark(build_table)
    report("table1_storage", table)
    tourney = presets.build("tourney").direction_storage_kib()
    b2 = presets.build("b2").direction_storage_kib()
    tage_l = presets.build("tage_l").direction_storage_kib()
    # Shape assertions: TAGE-L is the big design; the other two comparable.
    assert tage_l > 3 * max(tourney, b2)
    assert 0.5 < tourney / b2 < 2.0
