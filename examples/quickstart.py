"""Quickstart: compose a predictor from a topology string and evaluate it.

The COBRA flow in five lines: pick a topology (the paper's notation),
compose it against the standard sub-component library, attach it to the
BOOM-like host core, run a workload, read the numbers.

Run:  python examples/quickstart.py
"""

from repro import compose
from repro.eval import run_workload
from repro.synthesis import AreaModel, format_breakdown
from repro.workloads import build_specint


def main() -> None:
    # The paper's TAGE-L design (§V-A): a loop corrector over TAGE over a
    # BTB, PC-indexed bimodal, and single-cycle micro-BTB.
    predictor = compose("LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1")
    print(f"composed: {predictor.describe()}  (pipeline depth {predictor.depth})")
    print(f"direction storage: {predictor.direction_storage_kib():.1f} KiB")

    # Run a synthetic SPECint17-like workload on the 4-wide core model.
    program = build_specint("xz", scale=0.5)
    result = run_workload(predictor, program, system_name="TAGE-L")
    print()
    print(result.row())
    print(f"  branches={result.branches}  mispredicts={result.branch_mispredicts}"
          f"  (+{result.target_mispredicts} indirect-target)")

    # Physical-design feedback from the analytical synthesis model (Fig. 8).
    print()
    print("area breakdown:")
    print(format_breakdown(AreaModel().predictor_breakdown(predictor)))


if __name__ == "__main__":
    main()
