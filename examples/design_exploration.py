"""Design exploration: sweep predictor topologies over one workload.

This is the workflow the composer exists for (§IV): express several design
points as topology strings — including variations the paper discusses, like
where to attach a loop predictor relative to a tournament — build each one,
and compare accuracy, IPC, and estimated area side by side.

Run:  python examples/design_exploration.py
"""

from repro.components.library import standard_library
from repro.core import ComposerConfig, compose
from repro.eval import run_workload
from repro.synthesis import AreaModel
from repro.workloads import build_specint

#: Candidate design points, in the paper's topology notation.  The last
#: three are the §IV-A1 loop-predictor placement alternatives.
DESIGNS = [
    ("bimodal only", "BIM2", 16),
    ("gshare", "GSHARE2", 32),
    ("B2 (BOOM v2)", "GTAG3 > BTB2 > BIM2", 16),
    ("tournament", "TOURNEY3 > [GBIM2 > BTB2, LBIM2]", 32),
    ("TAGE", "TAGE3 > BTB2 > BIM2", 64),
    ("TAGE-L", "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", 64),
    ("perceptron", "PERC3 > BTB2 > BIM2", 64),
    ("tourney+loop@g", "TOURNEY3 > [(LOOP2 > GBIM2 > BTB2), LBIM2]", 32),
    ("tourney+loop@l", "TOURNEY3 > [GBIM2 > BTB2, (LOOP2 > LBIM2)]", 32),
    ("loop>tourney", "LOOP3 > TOURNEY3 > [GBIM2 > BTB2, LBIM2]", 32),
]


def main(workload: str = "omnetpp", scale: float = 0.5) -> None:
    program = build_specint(workload, scale=scale)
    area_model = AreaModel()
    print(f"workload: {workload} ({scale=})\n")
    header = f"{'design':16s} {'topology':46s} {'MPKI':>7s} {'IPC':>6s} {'acc':>7s} {'KiB':>7s} {'area':>9s}"
    print(header)
    print("-" * len(header))
    for label, topology, ghist_bits in DESIGNS:
        library = standard_library(global_history_bits=ghist_bits)
        predictor = compose(
            topology, library, ComposerConfig(global_history_bits=ghist_bits)
        )
        result = run_workload(predictor, program, system_name=label)
        area = area_model.predictor_total(predictor)
        print(
            f"{label:16s} {topology:46s} {result.mpki:7.1f} {result.ipc:6.2f} "
            f"{result.branch_accuracy * 100:6.1f}% "
            f"{predictor.direction_storage_kib():7.1f} {area:9.0f}"
        )


if __name__ == "__main__":
    main()
