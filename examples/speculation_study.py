"""Speculation study: why hardware-guided evaluation matters (§VI).

Reproduces the paper's discussion-section experiments interactively:

1. §VI-B — global-history repair with vs. without fetch replay: replay
   improves accuracy and mean IPC, but *hurts* the short-loop Dhrystone.
2. §VI-A — TAGE prediction latency 2 vs 3 cycles: accuracy unchanged,
   small IPC cost.
3. §II-B — the trace-driven software-simulator methodology vs. the full
   speculative core: the modelling gap the paper's whole approach targets.

Run:  python examples/speculation_study.py
"""

from repro import presets
from repro.eval import run_workload, trace_accuracy
from repro.workloads import build_dhrystone, build_specint


def section_vi_b(scale: float = 0.5) -> None:
    print("=== §VI-B: global-history repair with vs. without replay ===")
    workloads = {
        "xz": build_specint("xz", scale=scale),
        "omnetpp": build_specint("omnetpp", scale=scale),
        "dhrystone": build_dhrystone(scale=scale),
    }
    for name, program in workloads.items():
        replay = run_workload(
            presets.build("tage_l", ghist_repair_mode="replay"),
            program, system_name="replay")
        stale = run_workload(
            presets.build("tage_l", ghist_repair_mode="no_replay",
                          ghist_corruption_window=8),
            program, system_name="no-replay")
        d_ipc = 100 * (replay.ipc / stale.ipc - 1)
        d_miss = 100 * (1 - replay.branch_mispredicts / max(1, stale.branch_mispredicts))
        print(f"  {name:10s} replay IPC {replay.ipc:5.2f} vs {stale.ipc:5.2f} "
              f"({d_ipc:+5.1f}%), mispredicts reduced {d_miss:5.1f}%")
    print()


def section_vi_a(scale: float = 0.5) -> None:
    print("=== §VI-A: TAGE response latency 2 vs 3 cycles ===")
    program = build_specint("x264", scale=scale)
    fast = run_workload(presets.build("tage_l", tage_latency=2), program,
                        system_name="TAGE@2")
    slow = run_workload(presets.build("tage_l", tage_latency=3), program,
                        system_name="TAGE@3")
    print(f"  latency 2: IPC {fast.ipc:.2f}  acc {fast.branch_accuracy*100:.2f}%")
    print(f"  latency 3: IPC {slow.ipc:.2f}  acc {slow.branch_accuracy*100:.2f}%")
    print(f"  IPC cost of the extra stage: "
          f"{100 * (1 - slow.ipc / fast.ipc):.1f}%\n")


def section_ii_b(scale: float = 0.5) -> None:
    print("=== §II-B: trace-driven simulation vs. speculative core ===")
    for name in ("xz", "perlbench"):
        program = build_specint(name, scale=scale)
        trace = trace_accuracy(presets.build("tage_l"), program)
        core = run_workload("tage_l", program)
        gap = (trace.accuracy - core.branch_accuracy) * 100
        print(f"  {name:10s} trace-sim acc {trace.accuracy*100:5.2f}%  "
              f"core acc {core.branch_accuracy*100:5.2f}%  "
              f"modelling gap {gap:+.2f} pp  "
              f"MPKI {trace.mpki:.2f} vs {core.mpki:.2f}")
    print("  (the trace simulator never sees wrong-path history corruption,")
    print("   repair latency, or fetch-packet cuts — the §II-B error source)")


if __name__ == "__main__":
    section_vi_b()
    section_vi_a()
    section_ii_b()
