"""Implementing a new sub-component against the COBRA interface (§III).

The framework's point is that a predictor sub-component written once against
the interface composes with everything else.  This example implements a
component that is *not* in the starter library — a YAGS-style "agree"
filter [Eden & Mudge 1998]: a small tagged table that records only branches
that DISAGREE with the backing predictor's bias — registers it under the
base name ``AGREE``, and drops it into a topology.

Run:  python examples/custom_component.py
"""

from typing import Sequence, Tuple

import numpy as np

from repro._util import (
    counter_taken,
    fold_history,
    hash_pc,
    log2_exact,
    mask,
    saturating_update,
)
from repro.components.base import MetaCodec
from repro.components.library import standard_library
from repro.core import ComposerConfig, compose
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector
from repro.eval import run_workload
from repro.workloads import build_specint


class AgreeFilter(PredictorComponent):
    """A tagged exception cache over the incoming prediction.

    On a tag hit, the stored counter *replaces* the incoming direction; the
    table only allocates when the incoming prediction mispredicts, so it
    holds exactly the "exceptions" the backing predictor gets wrong.  The
    metadata field stores the hit flag, the predict-time counter, and the
    incoming direction (to train allocation), exactly in the spirit of
    §III-D.
    """

    def __init__(self, name: str, latency: int = 3, n_sets: int = 256,
                 fetch_width: int = 4, history_bits: int = 12, tag_bits: int = 8):
        self._codec = MetaCodec([("hit", 1), ("ctr", 2), ("lane", 2), ("inc", 1)])
        super().__init__(
            name, latency, meta_bits=self._codec.width, uses_global_history=True
        )
        self.n_sets = n_sets
        self.fetch_width = fetch_width
        self.history_bits = history_bits
        self.tag_bits = tag_bits
        self._index_bits = log2_exact(n_sets)
        self._valid = np.zeros(n_sets, dtype=bool)
        self._tags = np.zeros(n_sets, dtype=np.int64)
        self._ctrs = np.ones(n_sets, dtype=np.int64)

    def _index_tag(self, branch_pc: int, ghist: int) -> Tuple[int, int]:
        folded = fold_history(ghist, self.history_bits, self._index_bits)
        index = hash_pc(branch_pc, self._index_bits) ^ folded
        tag = (branch_pc >> 2) & mask(self.tag_bits)
        return index, tag

    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        out = predict_in[0].copy()
        for lane, slot in enumerate(predict_in[0].slots):
            if not (slot.hit and slot.is_branch):
                continue
            index, tag = self._index_tag(req.fetch_pc + lane, req.ghist)
            if self._valid[index] and int(self._tags[index]) == tag:
                ctr = int(self._ctrs[index])
                out.slots[lane].taken = counter_taken(ctr, 2)
                out.slots[lane].hit = True
                meta = self._codec.pack(hit=1, ctr=ctr, lane=lane,
                                        inc=int(slot.taken))
            else:
                meta = self._codec.pack(hit=0, ctr=0, lane=lane,
                                        inc=int(slot.taken))
            return out, meta
        return out, self._codec.pack(hit=0, ctr=0, lane=0, inc=0)

    def on_update(self, bundle: UpdateBundle) -> None:
        fields = self._codec.unpack(bundle.meta)
        lane = int(fields["lane"])
        if lane >= len(bundle.br_mask) or not bundle.br_mask[lane]:
            return
        taken = bundle.taken_mask[lane]
        index, tag = self._index_tag(bundle.fetch_pc + lane, bundle.ghist)
        if fields["hit"] and self._valid[index] and int(self._tags[index]) == tag:
            self._ctrs[index] = saturating_update(int(fields["ctr"]), taken, 2)
        elif bundle.mispredicted and bundle.mispredict_idx == lane:
            # Allocate an exception entry for a branch the rest of the
            # pipeline just got wrong.
            self._valid[index] = True
            self._tags[index] = tag
            self._ctrs[index] = 2 if taken else 1

    def storage(self) -> StorageReport:
        bits = self.n_sets * (1 + self.tag_bits + 2)
        return StorageReport(self.name, sram_bits=bits, breakdown={"entries": bits})

    def reset(self) -> None:
        self._valid.fill(False)
        self._ctrs.fill(1)


def main() -> None:
    program = build_specint("gcc", scale=0.5)
    library = standard_library(global_history_bits=32).with_params(
        "AGREE", lambda name, latency: AgreeFilter(name, latency)
    )
    # Classic YAGS framing: the exception cache sits over a *bias* predictor
    # (the PC-indexed bimodal) and holds only the history-dependent
    # branches that bias gets wrong.
    baseline = compose("BTB2 > BIM2", standard_library(global_history_bits=32),
                       ComposerConfig(global_history_bits=32))
    filtered = compose("AGREE3 > BTB2 > BIM2", library,
                       ComposerConfig(global_history_bits=32))

    base = run_workload(baseline, program, system_name="bimodal")
    agree = run_workload(filtered, program, system_name="agree>bimodal")
    print(base.row())
    print(agree.row())
    improvement = base.mpki - agree.mpki
    print(f"\nexception filter removed {improvement:.1f} MPKI "
          f"({base.branch_mispredicts - agree.branch_mispredicts} mispredicts)")


if __name__ == "__main__":
    main()
