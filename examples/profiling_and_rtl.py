"""Profiling a predictor and exporting the RTL skeleton.

Two downstream workflows in one example:

1. **Site profiling** — run a workload, rank the static branches by
   mispredict contribution (the FireSim out-of-band profiler workflow), and
   use the report to pick a fix: here, the top offenders are hammocks, so
   enabling SFB predication (§VI-C) removes them.
2. **RTL export** — emit the structural Verilog skeleton of the composed
   pipeline: the module hierarchy, event ports, and override muxes the
   COBRA composer determines.

Run:  python examples/profiling_and_rtl.py
"""

from repro import presets
from repro.eval import format_profile
from repro.frontend import Core, CoreConfig
from repro.rtl import generate_verilog_skeleton
from repro.workloads import build_coremark


def main() -> None:
    program = build_coremark(scale=0.4)

    print("=== 1. profile the baseline ===")
    core = Core(program, presets.build("tage_l"), CoreConfig())
    stats = core.run()
    print(f"accuracy {stats.branch_accuracy * 100:.1f}%, "
          f"IPC {stats.ipc:.2f}\n")
    print(format_profile(stats, program, limit=6))

    # The profile points at data-dependent short-forward branches; apply
    # the §VI-C fix and re-measure.
    print("\n=== 2. apply SFB predication and re-profile ===")
    core2 = Core(program, presets.build("tage_l"), CoreConfig(sfb_enabled=True))
    stats2 = core2.run()
    print(f"accuracy {stats2.branch_accuracy * 100:.1f}%, "
          f"IPC {stats2.ipc:.2f}, "
          f"{stats2.sfb_converted} branches predicated\n")
    print(format_profile(stats2, program, limit=6))

    print("\n=== 3. structural Verilog skeleton (first 40 lines) ===")
    rtl = generate_verilog_skeleton(presets.tage_l())
    print("\n".join(rtl.splitlines()[:40]))
    print(f"... ({len(rtl.splitlines())} lines total)")


if __name__ == "__main__":
    main()
